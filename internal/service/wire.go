package service

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/datalog"
	"repro/internal/stream"
)

// Wire types for the JSON front end. Decoding is strict: unknown fields,
// trailing data and oversized bodies are errors, so malformed requests
// fail loudly instead of being half-read. These types (and DecodeJSON)
// are exported so clients — cmd/datalog's -server mode among them —
// speak exactly the same schema the server validates.

// maxBodyBytes bounds a request body (1 MiB is hundreds of thousands of
// facts; anything bigger should be split across commits).
const maxBodyBytes = 1 << 20

// FactJSON is one fact on the wire.
type FactJSON struct {
	Pred  string `json:"pred"`
	Tuple []int  `json:"tuple"`
}

// CommitRequest applies deletions (against the current version) then
// insertions, producing one new version.
type CommitRequest struct {
	Insert []FactJSON `json:"insert,omitempty"`
	Delete []FactJSON `json:"delete,omitempty"`
}

// CommitResponse reports the published version and per-program
// maintenance times.
type CommitResponse struct {
	Version    int64            `json:"version"`
	Inserted   int              `json:"inserted"`
	Deleted    int              `json:"deleted"`
	Maintained map[string]int64 `json:"maintained_ns,omitempty"`
}

// RegisterRequest registers (or replaces) a named program.
type RegisterRequest struct {
	Name    string `json:"name"`
	Program string `json:"program"`
}

// RegisterResponse echoes the registration's identity and initial sizes.
type RegisterResponse struct {
	Name     string         `json:"name"`
	Hash     string         `json:"hash"`
	Version  int64          `json:"version"`
	IDBSizes map[string]int `json:"idb_sizes"`
}

// QueryRequestJSON reads one IDB predicate at a version. Version omitted
// or negative means the latest; Pred omitted means the goal. With Tuple
// set the response carries a membership bit instead of the full relation.
// Bind, when present, must list one entry per argument of the predicate:
// a number binds that position, null leaves it free — `"bind": [0, null]`
// asks for the tuples whose first component is 0. A binding with at
// least one bound position is answered goal-directed via the magic-set
// rewrite of the program.
// Limit caps the returned tuples (0 = all); paginated responses carry
// next_cursor, which Cursor passes back to resume strictly after the
// last tuple of the previous page. Stream (or an Accept header of
// application/x-ndjson) switches the response to NDJSON: a header line,
// one JSON array per tuple produced as it is derived, and a trailer
// line with the count and pagination state.
type QueryRequestJSON struct {
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`
	Pred    string `json:"pred,omitempty"`
	Version *int64 `json:"version,omitempty"`
	Tuple   []int  `json:"tuple,omitempty"`
	Bind    []*int `json:"bind,omitempty"`
	Limit   int    `json:"limit,omitempty"`
	Cursor  string `json:"cursor,omitempty"`
	Stream  bool   `json:"stream,omitempty"`
}

// QueryResponse is the answer to one query. Goal and DemandFacts are set
// for goal-directed (bound) queries: the canonical binding pattern and
// the size of the demand set the magic evaluation derived.
type QueryResponse struct {
	Pred        string  `json:"pred"`
	Version     int64   `json:"version"`
	Count       int     `json:"count"`
	Tuples      [][]int `json:"tuples,omitempty"`
	Has         *bool   `json:"has,omitempty"`
	Origin      string  `json:"origin"`
	Goal        string  `json:"goal,omitempty"`
	DemandFacts *int    `json:"demand_facts,omitempty"`
	// NextCursor resumes the next page of a limited query; tuples are in
	// the canonical order (sorted by components), so the page boundary is
	// stable. Empty on the final page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// StreamHeaderJSON is the first line of an NDJSON query response.
// Sorted is false on the genuinely streamed origin: tuples arrive in
// derivation order and a truncated stream has no cursor.
type StreamHeaderJSON struct {
	Pred    string `json:"pred"`
	Version int64  `json:"version"`
	Origin  string `json:"origin"`
	Goal    string `json:"goal,omitempty"`
	Sorted  bool   `json:"sorted"`
}

// StreamTrailerJSON is the last line of an NDJSON query response: the
// tuple count, pagination state (NextCursor on sorted origins, the
// Truncated flag on the unordered streamed origin), and the error that
// cut the stream short, if any.
type StreamTrailerJSON struct {
	Count      int    `json:"count"`
	NextCursor string `json:"next_cursor,omitempty"`
	Truncated  bool   `json:"truncated,omitempty"`
	Error      string `json:"error,omitempty"`
}

// ExplainRequestJSON asks for the join plan of a query: same resolution
// fields as QueryRequestJSON. A bind with a bound position explains the
// magic-set-rewritten, seeded program the service would actually run.
type ExplainRequestJSON struct {
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`
	Pred    string `json:"pred,omitempty"`
	Version *int64 `json:"version,omitempty"`
	Bind    []*int `json:"bind,omitempty"`
}

// ExplainStepJSON is one join step of a planned rule body. Exec and Via
// report the streaming executor's decision for the step — "stream"
// (inlined producer or symmetric hash join) or "materialize" (scan or
// probe of a stored relation) — and EstBufferRows the rows the step
// forces it to hold.
type ExplainStepJSON struct {
	Atom          string  `json:"atom"`
	OrigIndex     int     `json:"orig_index"`
	ProbeCols     []int   `json:"probe_cols"`
	EstFanout     float64 `json:"est_fanout"`
	EstRows       float64 `json:"est_rows"`
	Exec          string  `json:"exec,omitempty"`
	Via           string  `json:"via,omitempty"`
	EstBufferRows float64 `json:"est_buffer_rows,omitempty"`
}

// ExplainRuleJSON is the plan and the observed statistics for one rule.
type ExplainRuleJSON struct {
	Original   string            `json:"original"`
	Planned    string            `json:"planned"`
	Reordered  bool              `json:"reordered"`
	Exhaustive bool              `json:"exhaustive"`
	EstRows    float64           `json:"est_rows"`
	EstCost    float64           `json:"est_cost"`
	Steps      []ExplainStepJSON `json:"steps"`
	ActualRows int64             `json:"actual_rows"` // derived rows, duplicates included
	NewRows    int64             `json:"new_rows"`
	Firings    int64             `json:"firings"`
	TimeNs     int64             `json:"time_ns"`
}

// ExplainPrunedJSON records a rule the containment pre-pass dropped.
type ExplainPrunedJSON struct {
	Rule string `json:"rule"`
	By   string `json:"subsumed_by"`
}

// ExplainResponse is the plan of one query plus actual row counts from
// evaluating it.
type ExplainResponse struct {
	Pred         string              `json:"pred"`
	Version      int64               `json:"version"`
	Goal         string              `json:"goal,omitempty"`
	Strategy     string              `json:"strategy"`
	Epoch        string              `json:"stats_epoch"`
	PlanCacheHit bool                `json:"plan_cache_hit"`
	Pruned       []ExplainPrunedJSON `json:"pruned,omitempty"`
	Rules        []ExplainRuleJSON   `json:"rules"`
	// Streaming reports whether a streamed run of this query executes in
	// one streaming pass (false: the reachable slice is recursive and
	// falls back to semi-naive materialization, see StreamReason).
	// EstPeakBufferRows is the streaming executor's estimated peak
	// buffered-row footprint.
	Streaming         *bool   `json:"streaming,omitempty"`
	StreamReason      string  `json:"stream_reason,omitempty"`
	EstPeakBufferRows float64 `json:"est_peak_buffer_rows,omitempty"`
}

// maskCols expands a probe bitmask into the column indexes it covers.
func maskCols(mask uint64) []int {
	var cols []int
	for i := 0; mask != 0; i, mask = i+1, mask>>1 {
		if mask&1 != 0 {
			cols = append(cols, i)
		}
	}
	return cols
}

// explainToWire flattens an ExplainResult for JSON.
func explainToWire(res ExplainResult) ExplainResponse {
	out := ExplainResponse{
		Pred: res.Pred, Version: res.Version, Goal: res.Goal,
		Strategy: res.Strategy, Epoch: fmt.Sprintf("%016x", res.Epoch),
		PlanCacheHit: res.CacheHit,
	}
	for _, pr := range res.Plan.Pruned {
		out.Pruned = append(out.Pruned, ExplainPrunedJSON{Rule: pr.Rule, By: pr.By})
	}
	if res.Stream != nil {
		streaming := res.Stream.Streaming
		out.Streaming = &streaming
		out.StreamReason = res.Stream.Reason
		out.EstPeakBufferRows = res.Stream.EstPeakBufferRows
	}
	for i, rp := range res.Plan.Rules {
		rj := ExplainRuleJSON{
			Original: rp.Original, Planned: rp.Planned,
			Reordered: rp.Reordered, Exhaustive: rp.Exhaustive,
			EstRows: rp.EstRows, EstCost: rp.EstCost,
		}
		// Stream decisions align rule-for-rule and step-for-step with the
		// plan (both follow the planned atom order).
		var sdSteps []stream.StepDecision
		if res.Stream != nil && i < len(res.Stream.Rules) {
			sdSteps = res.Stream.Rules[i].Steps
		}
		for j, st := range rp.Steps {
			ej := ExplainStepJSON{
				Atom: st.Atom, OrigIndex: st.OrigIndex, ProbeCols: maskCols(st.Probe),
				EstFanout: st.EstFanout, EstRows: st.EstRows,
			}
			if j < len(sdSteps) {
				ej.Exec, ej.Via, ej.EstBufferRows = sdSteps[j].Exec, sdSteps[j].Via, sdSteps[j].EstBufferRows
			}
			rj.Steps = append(rj.Steps, ej)
		}
		if i < len(res.Actuals) {
			a := res.Actuals[i]
			rj.ActualRows, rj.NewRows, rj.Firings, rj.TimeNs = a.Derived, a.New, a.Firings, a.TimeNs
		}
		out.Rules = append(out.Rules, rj)
	}
	return out
}

// ErrorResponse carries a request failure on the legacy unversioned
// paths.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ErrorEnvelope carries a request failure on the /v1 surface: a stable
// machine-readable code plus a human-readable message.
type ErrorEnvelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// DecodeJSON strictly decodes one JSON value from r into v: unknown
// fields, malformed syntax, trailing non-whitespace and bodies over
// maxBodyBytes are errors. It never panics on any input.
func DecodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("service: trailing data after JSON body")
	}
	return nil
}

// factsFromWire converts wire facts, rejecting empty predicates and
// missing tuples up front so engine-level validation never sees nils.
func factsFromWire(in []FactJSON) ([]datalog.Fact, error) {
	out := make([]datalog.Fact, 0, len(in))
	for _, f := range in {
		if f.Pred == "" {
			return nil, fmt.Errorf("service: fact with empty predicate name")
		}
		if len(f.Tuple) == 0 {
			return nil, fmt.Errorf("service: fact %s has no tuple", f.Pred)
		}
		out = append(out, datalog.Fact{Pred: f.Pred, Tuple: datalog.Tuple(f.Tuple)})
	}
	return out, nil
}

// tuplesToWire flattens engine tuples for JSON.
func tuplesToWire(in []datalog.Tuple) [][]int {
	out := make([][]int, len(in))
	for i, t := range in {
		out[i] = []int(t)
	}
	return out
}
