package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datalog"
	"repro/internal/magic"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/stream"
)

// ErrClosed reports an operation on a service whose Close has been
// called; in-flight evaluations are aborted and new work is refused.
var ErrClosed = errors.New("service: closed")

// Config sizes the service.
type Config struct {
	// Universe is the size of the EDB universe {0..Universe-1}.
	Universe int
	// History is the number of EDB snapshots kept queryable (default 64).
	History int
	// CacheEntries bounds the query-result LRU (default 256).
	CacheEntries int
	// RewriteCacheEntries bounds the magic-set rewrite LRU, keyed by
	// (program hash, goal predicate, adornment) (default 64).
	RewriteCacheEntries int
	// Workers bounds concurrent from-scratch evaluations for historical
	// and ad-hoc queries (default GOMAXPROCS).
	Workers int
	// Parallelism is passed to the evaluator (datalog.Options.Parallelism)
	// for both incremental maintenance and from-scratch queries.
	Parallelism int
	// Shards > 1 evaluates registered programs on the sharded subsystem
	// (internal/shard): the EDB is hash-partitioned across that many
	// in-process workers and commits fan partition deltas out through
	// distributed semi-naive rounds. Queries and subscriptions read the
	// coordinator's merged view through the same code paths as the
	// single-node engine. 0 or 1 means unsharded (the default).
	Shards int
	// QueryTimeout bounds each query's queueing plus evaluation time when
	// > 0; queries exceeding it fail with context.DeadlineExceeded.
	QueryTimeout time.Duration
	// NoPlanner disables the cost-based join planner; evaluation falls
	// back to textual body order. On by default because planning is
	// answer-preserving and cached.
	NoPlanner bool
	// PlanCacheEntries bounds the planner's plan cache (default 128).
	PlanCacheEntries int
	// SubscribeBuffer is the default per-subscriber event buffer for
	// /v1/subscribe (default 64; requests may ask for more, capped at
	// 4096). A subscriber whose buffer overflows is dropped with a gap
	// event rather than stalling commits.
	SubscribeBuffer int
	// SubscribeHistory is how many recent commits' view deltas the
	// subscription hub retains for resume-from-version (default: History).
	SubscribeHistory int

	// DataDir enables durable storage: commits, registrations and
	// unregistrations are appended to a checksummed WAL under this
	// directory, snapshot checkpoints bound replay, and New recovers the
	// store to the last durable commit on startup. Empty means
	// memory-only (the pre-storage behavior).
	DataDir string
	// Fsync selects the WAL sync policy when DataDir is set: "always"
	// (default — an acknowledged commit is durable), "interval"
	// (group commit: batches fsynced at most every FsyncInterval), or
	// "none" (the OS decides; fsync only on rotation/checkpoint/close).
	Fsync string
	// FsyncInterval is the group-commit window for Fsync "interval"
	// (default 2ms).
	FsyncInterval time.Duration
	// CheckpointEvery writes a snapshot checkpoint (and truncates covered
	// WAL segments) every this many commits (default 256; negative
	// disables checkpointing).
	CheckpointEvery int
	// SegmentBytes rolls WAL segments at this size (default 8 MiB).
	SegmentBytes int64
}

// Service is a concurrent Datalog(≠) service: a versioned EDB store plus
// registered programs whose fixpoints are maintained incrementally on
// every commit and served to many clients. Reads of materialized results
// take a shared lock; commits take the exclusive lock; historical and
// ad-hoc queries evaluate snapshot clones on a bounded worker pool under
// the caller's context — a cancelled request or a closed service aborts
// the evaluation within one fixpoint round.
type Service struct {
	cfg      Config
	opts     datalog.Options
	store    *Store
	cache    *resultCache
	rewrites *rewriteCache
	exec     *executor
	// planner is the shared cost-based join planner (nil with
	// Config.NoPlanner); evaluations bind it to their snapshot's
	// statistics catalog via optsFor.
	planner *plan.Planner

	// log is the durable write-ahead log (nil without Config.DataDir).
	// Appends happen under mu, after the in-memory store publishes and
	// before the commit is acknowledged; recovery replays it in New.
	log       *storage.Log
	recovered RecoveryInfo
	sinceCkpt int // commits since the last checkpoint, guarded by mu

	// root ends when Close is called; every evaluation context is tied to
	// it so shutdown aborts in-flight work.
	root      context.Context
	stop      context.CancelFunc
	closeOnce sync.Once
	closeErr  error

	reg *obs.Registry
	met serviceMetrics

	// deprecateOnce gates the one-time warning the first legacy
	// (unversioned) HTTP request logs.
	deprecateOnce sync.Once

	mu    sync.RWMutex // guards progs and every registration's view
	progs map[string]*registration

	// subs fans each commit's maintenance deltas out to live
	// subscriptions (see subscribe.go).
	subs *subHub

	commits     atomic.Int64
	queries     atomic.Int64
	scratchEval atomic.Int64
}

// serviceMetrics is the service's obs instrumentation; see initMetrics
// for the meaning of each series.
type serviceMetrics struct {
	queries          *obs.Counter
	queryErrors      *obs.Counter
	commits          *obs.Counter
	commitErrors     *obs.Counter
	scratchEvals     *obs.Counter
	evalRounds       *obs.Counter
	cacheHits        *obs.Counter
	cacheMisses      *obs.Counter
	programsDropped  *obs.Counter
	goalQueries      *obs.Counter
	rewriteHits      *obs.Counter
	rewriteMisses    *obs.Counter
	checkpointErrors *obs.Counter
	streamQueries    *obs.Counter
	streamRows       *obs.Counter
	streamFallbacks  *obs.Counter
	deprecatedReqs   *obs.Counter
	streamsActive    *obs.Gauge
	streamPeakBuf    *obs.Gauge
	querySeconds     *obs.Histogram
	commitSeconds    *obs.Histogram
	maintainSeconds  *obs.Histogram
	demandFacts      *obs.Histogram
	planEstError     *obs.Histogram
}

// planEstErrorBuckets bucket |log₂(estimated/actual)| rows: 0 means the
// cost model nailed it, 3 means it was 8x off in either direction.
var planEstErrorBuckets = []float64{0.5, 1, 2, 3, 4, 6, 8, 12}

// view is the maintenance surface a registration's materialized fixpoint
// exposes: implemented by *datalog.Incremental (single-node) and
// *shard.Coordinator (Config.Shards > 1), so every read and maintenance
// path in the service is agnostic to where the fixpoint lives.
type view interface {
	Check(facts ...datalog.Fact) error
	InsertContext(ctx context.Context, facts ...datalog.Fact) error
	DeleteContext(ctx context.Context, facts ...datalog.Fact) error
	LastDelta() datalog.Delta
	Result() *datalog.Result
	Rounds() int
	Updates() int
	Err() error
}

// registration is one registered program and its maintained view.
type registration struct {
	name    string
	hash    string
	source  string
	prog    *datalog.Program
	inc     view
	version int64 // EDB version the materialization reflects
	// coord is non-nil when inc is a sharded coordinator (Config.Shards).
	coord *shard.Coordinator

	maintainTotal time.Duration
	maintainLast  time.Duration
}

// New returns a service over Config.Universe elements. With
// Config.DataDir set it opens the durable log and rebuilds the store to
// the last durable commit: the newest valid checkpoint is loaded, WAL
// records after it are replayed through the ordinary commit/registration
// paths (so incremental views are re-derived by the same maintenance code
// that built them), and the log is left appendable. Callers that want
// shutdown to abort in-flight evaluations — and, with storage, the final
// WAL flush — must call Close.
func New(cfg Config) (*Service, error) {
	if cfg.Universe <= 0 {
		return nil, fmt.Errorf("service: universe size must be positive, got %d", cfg.Universe)
	}
	if cfg.History == 0 {
		cfg.History = 64
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.RewriteCacheEntries == 0 {
		cfg.RewriteCacheEntries = 64
	}
	if cfg.PlanCacheEntries == 0 {
		cfg.PlanCacheEntries = 128
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 256
	}
	if cfg.SubscribeBuffer == 0 {
		cfg.SubscribeBuffer = 64
	}
	if cfg.SubscribeHistory == 0 {
		cfg.SubscribeHistory = cfg.History
	}
	root, stop := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		opts:     datalog.DefaultOptions.WithParallelism(cfg.Parallelism),
		store:    NewStore(cfg.Universe, cfg.History),
		cache:    newResultCache(cfg.CacheEntries),
		rewrites: newRewriteCache(cfg.RewriteCacheEntries),
		exec:     newExecutor(cfg.Workers),
		root:     root,
		stop:     stop,
		progs:    map[string]*registration{},
		subs:     newSubHub(cfg.SubscribeHistory, 0),
	}
	if !cfg.NoPlanner {
		s.planner = plan.New(plan.Config{CacheEntries: cfg.PlanCacheEntries})
	}
	if cfg.DataDir != "" {
		if err := s.openStorage(); err != nil {
			stop()
			return nil, err
		}
		// Recovery from a checkpoint with an empty WAL tail publishes
		// nothing, so catch the hub's version anchor up to the store.
		if s.subs.version < s.store.Version() {
			s.subs.version = s.store.Version()
		}
	}
	s.initMetrics()
	return s, nil
}

// RecoveryInfo describes what startup recovery rebuilt from DataDir.
type RecoveryInfo struct {
	// Enabled is true when the service runs with durable storage.
	Enabled bool
	// Version is the EDB version recovered to (0 for a fresh directory).
	Version int64
	// CheckpointVersion is the version of the checkpoint replay started
	// from (0 if none).
	CheckpointVersion int64
	// ReplayedCommits and ReplayedRegistrations count WAL records applied
	// on top of the checkpoint; Programs is the registration count after
	// recovery.
	ReplayedCommits       int
	ReplayedRegistrations int
	Programs              int
	// TornTail, CorruptRecords, DroppedBytes and BadCheckpoints surface
	// damage the recovery scan found and discarded (see storage.Recovery).
	TornTail       bool
	CorruptRecords int
	DroppedBytes   int64
	BadCheckpoints int
}

// Recovery returns what startup recovery found; zero-valued without
// DataDir.
func (s *Service) Recovery() RecoveryInfo { return s.recovered }

// openStorage opens the WAL directory and rebuilds the service's durable
// state. Called from New before the service is shared, so no locking.
func (s *Service) openStorage() error {
	policy, err := storage.ParseSyncPolicy(s.cfg.Fsync)
	if err != nil {
		return err
	}
	log, rec, err := storage.Open(s.cfg.DataDir, storage.Options{
		Sync:         policy,
		SyncInterval: s.cfg.FsyncInterval,
		SegmentBytes: s.cfg.SegmentBytes,
	})
	if err != nil {
		return err
	}
	s.log = log
	s.recovered = RecoveryInfo{
		Enabled:        true,
		TornTail:       rec.TornTail,
		CorruptRecords: rec.CorruptRecords,
		DroppedBytes:   rec.DroppedBytes,
		BadCheckpoints: rec.BadCheckpoints,
	}
	if ck := rec.Checkpoint; ck != nil {
		if ck.Universe != s.cfg.Universe {
			log.Close()
			return fmt.Errorf("service: data dir %s was created with universe %d, configured %d",
				s.cfg.DataDir, ck.Universe, s.cfg.Universe)
		}
		s.store = NewStoreAt(ck.DB, ck.Version, s.cfg.History)
		s.recovered.CheckpointVersion = ck.Version
		for _, p := range ck.Programs {
			if _, err := s.registerLocked(s.root, p.Name, p.Source, false); err != nil {
				log.Close()
				return fmt.Errorf("service: recovering program %s from checkpoint: %w", p.Name, err)
			}
		}
	}
	for _, r := range rec.Records {
		if err := s.replayRecord(r); err != nil {
			log.Close()
			return err
		}
	}
	s.recovered.Version = s.store.Version()
	s.recovered.Programs = len(s.progs)
	return nil
}

// replayRecord applies one recovered WAL record through the same code
// paths a live request would take, minus the WAL append: commits run
// store.Commit plus incremental maintenance of every registration live at
// that point in the log, so recovered views are re-derived by the
// maintenance engine, not deserialized.
func (s *Service) replayRecord(r *storage.Record) error {
	switch r.Type {
	case storage.RecCommit:
		info, err := s.commitLocked(r.Insert, r.Delete, false)
		if err != nil {
			return fmt.Errorf("service: replaying commit lsn %d: %w", r.LSN, err)
		}
		if info.Version != r.Version {
			return fmt.Errorf("service: replay desync at lsn %d: store version %d, record version %d",
				r.LSN, info.Version, r.Version)
		}
		s.recovered.ReplayedCommits++
	case storage.RecRegister:
		if _, err := s.registerLocked(s.root, r.Name, r.Source, false); err != nil {
			return fmt.Errorf("service: replaying registration of %s (lsn %d): %w", r.Name, r.LSN, err)
		}
		s.recovered.ReplayedRegistrations++
	case storage.RecUnregister:
		delete(s.progs, r.Name)
		s.recovered.ReplayedRegistrations++
	default:
		return fmt.Errorf("service: unknown WAL record type %d at lsn %d", r.Type, r.LSN)
	}
	return nil
}

// initMetrics registers the service's series on a fresh obs registry.
func (s *Service) initMetrics() {
	r := obs.NewRegistry()
	s.reg = r
	s.met = serviceMetrics{
		queries:         r.Counter("datalog_queries_total", "queries answered (any origin)"),
		queryErrors:     r.Counter("datalog_query_errors_total", "queries that returned an error"),
		commits:         r.Counter("datalog_commits_total", "EDB commits applied"),
		commitErrors:    r.Counter("datalog_commit_errors_total", "commits rejected or aborted"),
		scratchEvals:    r.Counter("datalog_scratch_evals_total", "from-scratch fixpoint evaluations"),
		evalRounds:      r.Counter("datalog_eval_rounds_total", "fixpoint rounds executed by evaluations and maintenance"),
		cacheHits:       r.Counter("datalog_cache_hits_total", "query-result cache hits"),
		cacheMisses:     r.Counter("datalog_cache_misses_total", "query-result cache misses"),
		programsDropped: r.Counter("datalog_programs_dropped_total", "registrations dropped after an aborted maintenance run"),
		goalQueries:     r.Counter("datalog_goal_queries_total", "bound queries answered through the magic-set pipeline"),
		rewriteHits:     r.Counter("datalog_rewrite_cache_hits_total", "magic rewrite cache hits"),
		rewriteMisses:   r.Counter("datalog_rewrite_cache_misses_total", "magic rewrite cache misses"),
		streamQueries:   r.Counter("datalog_stream_queries_total", "queries served through the streaming executor (QueryStream / NDJSON)"),
		streamRows:      r.Counter("datalog_stream_rows_total", "tuples delivered by streaming queries"),
		streamFallbacks: r.Counter("datalog_stream_fallbacks_total", "streaming queries that fell back to materialized evaluation (recursive slice)"),
		deprecatedReqs:  r.Counter("datalog_deprecated_requests_total", "requests served on the legacy unversioned HTTP paths"),
		streamsActive:   r.Gauge("datalog_streams_active", "streaming queries currently open"),
		streamPeakBuf:   r.Gauge("datalog_stream_peak_buffered_rows", "high-water mark of rows buffered by any single streaming query"),
		querySeconds:    r.Histogram("datalog_query_seconds", "end-to-end query latency", nil),
		commitSeconds:   r.Histogram("datalog_commit_seconds", "commit latency including all maintenance", nil),
		maintainSeconds: r.Histogram("datalog_maintain_seconds", "per-program incremental maintenance latency", nil),
		demandFacts:     r.Histogram("datalog_magic_demand_facts", "demand-set size (magic facts) per goal-directed query", nil),
	}
	r.GaugeFunc("datalog_store_version", "latest committed EDB version", func() float64 {
		return float64(s.store.Version())
	})
	r.GaugeFunc("datalog_store_oldest_version", "oldest retained EDB version", func() float64 {
		return float64(s.store.Oldest())
	})
	r.GaugeFunc("datalog_store_snapshots", "retained EDB snapshots", func() float64 {
		return float64(len(s.store.Snapshots()))
	})
	r.GaugeFunc("datalog_programs_registered", "registered programs with maintained views", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.progs))
	})
	r.GaugeFunc("datalog_executor_in_flight", "from-scratch evaluations running now", func() float64 {
		return float64(s.exec.inFlight.Load())
	})
	r.GaugeFunc("datalog_subscribers_active", "open /v1/subscribe streams", func() float64 {
		return float64(s.subs.active())
	})
	r.GaugeFunc("datalog_subscribe_peak_queue", "high-water mark of any subscriber's event queue", func() float64 {
		return float64(s.subs.peakQueue.Load())
	})
	r.CounterFunc("datalog_subscribe_events_total", "subscription events delivered (hello, delta, replay)", func() int64 {
		return s.subs.events.Load()
	})
	r.CounterFunc("datalog_subscribe_replayed_total", "delta events replayed from the resume history", func() int64 {
		return s.subs.replayed.Load()
	})
	r.CounterFunc("datalog_subscribe_dropped_total", "subscribers dropped with a gap event (slow consumer or stale resume)", func() int64 {
		return s.subs.dropped.Load()
	})
	r.GaugeFunc("datalog_cache_entries", "live query-result cache entries", func() float64 {
		_, _, _, entries := s.cache.counters()
		return float64(entries)
	})
	r.GaugeFunc("datalog_rewrite_cache_entries", "live magic rewrite cache entries", func() float64 {
		_, _, _, entries := s.rewrites.counters()
		return float64(entries)
	})
	if s.log != nil {
		s.met.checkpointErrors = r.Counter("datalog_checkpoint_errors_total", "checkpoint writes that failed (retried on a later commit)")
		r.CounterFunc("datalog_wal_records_total", "WAL records appended this process", func() int64 {
			return s.log.Counters().Records
		})
		r.CounterFunc("datalog_wal_bytes_total", "WAL bytes appended (headers + payloads)", func() int64 {
			return s.log.Counters().AppendedBytes
		})
		r.CounterFunc("datalog_wal_fsyncs_total", "fsync calls on the active WAL segment", func() int64 {
			return s.log.Counters().Fsyncs
		})
		r.CounterFunc("datalog_wal_sync_nanos_total", "cumulative nanoseconds inside WAL flush+fsync", func() int64 {
			return s.log.Counters().SyncNanos
		})
		r.CounterFunc("datalog_checkpoints_total", "checkpoint files written", func() int64 {
			return s.log.Counters().Checkpoints
		})
		r.GaugeFunc("datalog_wal_segments", "WAL segments on disk (incl. active)", func() float64 {
			return float64(s.log.Counters().Segments)
		})
		r.GaugeFunc("datalog_recovered_version", "EDB version startup recovery rebuilt to", func() float64 {
			return float64(s.recovered.Version)
		})
	}
	if s.cfg.Shards > 1 {
		r.GaugeFunc("datalog_shard_workers", "shard workers per registered program", func() float64 {
			return float64(s.cfg.Shards)
		})
		r.CounterFunc("datalog_shard_exchange_rounds_total", "cross-shard exchange barrier rounds", func() int64 {
			return s.shardStats().ExchangeRounds
		})
		r.CounterFunc("datalog_shard_exchanged_tuples_total", "tuples routed shard-to-shard", func() int64 {
			return s.shardStats().ExchangedTuples
		})
		r.CounterFunc("datalog_shard_rebuilds_total", "delete-triggered sharded view rebuilds", func() int64 {
			return s.shardStats().Rebuilds
		})
	}
	if s.planner != nil {
		s.met.planEstError = r.Histogram("datalog_plan_estimation_error",
			"per-rule |log2(estimated/actual)| derived rows", planEstErrorBuckets)
		r.CounterFunc("datalog_plans_built_total", "join plans constructed", func() int64 {
			return s.planner.Counters().Built
		})
		r.CounterFunc("datalog_plan_cache_hits_total", "plan cache hits", func() int64 {
			return s.planner.Counters().CacheHits
		})
		r.CounterFunc("datalog_plan_cache_misses_total", "plan cache misses", func() int64 {
			return s.planner.Counters().CacheMisses
		})
		r.CounterFunc("datalog_plan_rules_pruned_total", "subsumed rules dropped by the containment pre-pass", func() int64 {
			return s.planner.Counters().RulesPruned
		})
		r.CounterFunc("datalog_plan_atoms_pruned_total", "redundant body atoms removed by CQ minimization", func() int64 {
			return s.planner.Counters().AtomsPruned
		})
		r.GaugeFunc("datalog_plan_cache_entries", "live plan cache entries", func() float64 {
			return float64(s.planner.Counters().CacheEntries)
		})
	}
}

// Metrics returns the service's metrics registry (served at /v1/metrics).
func (s *Service) Metrics() *obs.Registry { return s.reg }

// shardStats aggregates the cross-shard counters of every registered
// program's coordinator (zero-valued on a single-node service).
func (s *Service) shardStats() shard.Stats {
	var agg shard.Stats
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, reg := range s.progs {
		if reg.coord == nil {
			continue
		}
		st := reg.coord.Stats()
		agg.ExchangeRounds += st.ExchangeRounds
		agg.ExchangedTuples += st.ExchangedTuples
		agg.Rebuilds += st.Rebuilds
	}
	return agg
}

// Close aborts in-flight evaluations, makes every later operation fail
// with ErrClosed and — with durable storage — flushes and closes the WAL,
// returning its error. It is idempotent: later calls return the first
// result.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		s.stop()
		s.subs.closeAll()
		if s.log != nil {
			// Taking mu orders the close after any in-flight commit's append,
			// so the final flush covers everything that was acknowledged.
			s.mu.Lock()
			s.closeErr = s.log.Close()
			s.mu.Unlock()
		}
	})
	return s.closeErr
}

// scoped derives the evaluation context for one request: it ends when
// the caller's context ends, when the service closes, or — if timeout is
// positive — when the timeout elapses. Queries pass cfg.QueryTimeout;
// registration passes 0 (its initial evaluation is setup, not a query).
func (s *Service) scoped(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	unhook := context.AfterFunc(s.root, cancel)
	return ctx, func() { unhook(); cancel() }
}

// Store returns the underlying versioned EDB store.
func (s *Service) Store() *Store { return s.store }

// ProgramHash returns the canonical hash of a program: SHA-256 of its
// printed form, so textual variants that parse to the same rules share
// cache entries.
func ProgramHash(p *datalog.Program) string {
	sum := sha256.Sum256([]byte(p.String()))
	return hex.EncodeToString(sum[:])
}

// optsFor returns the evaluation options for one snapshot: the base
// options with the cost-based planner bound to that snapshot's statistics
// catalog. Binding per snapshot (rather than sharing one catalog) keeps
// historical queries planned against the statistics of their own version.
func (s *Service) optsFor(snap *Snapshot) datalog.Options {
	if s.planner == nil {
		return s.opts
	}
	return s.opts.WithPlanner(s.planner.With(snap.Stats))
}

// observeEstimation scores the cost model against reality: it re-fetches
// the plan the evaluation used (a warm plan-cache hit) and records each
// rule's |log2(estimated/actual)| derived-row error in the
// datalog_plan_estimation_error histogram.
func (s *Service) observeEstimation(prog *datalog.Program, snap *Snapshot, st *datalog.EvalStats) {
	if s.planner == nil || st == nil {
		return
	}
	pp, _ := s.planner.PlanProgram(prog, snap.Stats)
	for _, re := range plan.EstimationErrors(pp, st) {
		s.met.planEstError.Observe(re.AbsLog2)
	}
}

// RegisterInfo describes a registration.
type RegisterInfo struct {
	Name     string
	Hash     string
	Version  int64
	IDBSizes map[string]int
}

// Register is RegisterContext with a background context.
func (s *Service) Register(name, source string) (RegisterInfo, error) {
	return s.RegisterContext(context.Background(), name, source)
}

// RegisterContext parses the program source, evaluates it against the
// current snapshot under ctx, and keeps its fixpoint maintained under the
// given name. Re-registering a name replaces the previous program. A
// context abort during the initial evaluation registers nothing. With
// durable storage the registration is appended to the WAL only after its
// initial evaluation succeeds — a program that cannot evaluate is never
// made durable — and a WAL failure rolls the registration back.
func (s *Service) RegisterContext(ctx context.Context, name, source string) (RegisterInfo, error) {
	if err := s.root.Err(); err != nil {
		return RegisterInfo{}, ErrClosed
	}
	ctx, done := s.scoped(ctx, 0)
	defer done()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(ctx, name, source, true)
}

// registerLocked evaluates and installs one registration; the caller
// holds mu. persist=false is the recovery path: the registration comes
// from the checkpoint or the WAL, so nothing is appended and no request
// metrics are recorded (replay rebuilds state, it does not serve traffic).
func (s *Service) registerLocked(ctx context.Context, name, source string, persist bool) (RegisterInfo, error) {
	if name == "" {
		return RegisterInfo{}, fmt.Errorf("service: registration needs a name")
	}
	prog, err := datalog.Parse(source)
	if err != nil {
		return RegisterInfo{}, err
	}
	snap := s.store.Latest()
	start := time.Now()
	var inc view
	var coord *shard.Coordinator
	if s.cfg.Shards > 1 {
		coord, err = shard.NewContext(ctx, prog, snap.DB, shard.Config{
			Workers: s.cfg.Shards,
			Options: s.optsFor(snap),
		})
		if err != nil {
			return RegisterInfo{}, err
		}
		inc = coord
	} else {
		inc, err = datalog.NewIncrementalContext(ctx, prog, snap.DB, s.optsFor(snap))
		if err != nil {
			return RegisterInfo{}, err
		}
	}
	if persist {
		s.met.evalRounds.Add(int64(inc.Rounds()))
		s.observeEstimation(prog, snap, inc.Result().Stats)
	}
	reg := &registration{
		name:         name,
		hash:         ProgramHash(prog),
		source:       source,
		prog:         prog,
		inc:          inc,
		coord:        coord,
		version:      snap.Version,
		maintainLast: time.Since(start),
	}
	reg.maintainTotal = reg.maintainLast
	prev, hadPrev := s.progs[name]
	s.progs[name] = reg
	if persist && s.log != nil {
		if _, err := s.log.AppendRegister(name, source); err != nil {
			// Roll back: an unlogged registration would silently vanish on
			// restart, which is worse than failing the request.
			if hadPrev {
				s.progs[name] = prev
			} else {
				delete(s.progs, name)
			}
			return RegisterInfo{}, fmt.Errorf("service: persisting registration %s: %w", name, err)
		}
	}
	return s.registerInfo(reg), nil
}

func (s *Service) registerInfo(reg *registration) RegisterInfo {
	sizes := map[string]int{}
	for name, rel := range reg.inc.Result().IDB {
		sizes[name] = rel.Size()
	}
	return RegisterInfo{Name: reg.name, Hash: reg.hash, Version: reg.version, IDBSizes: sizes}
}

// Unregister drops a registered program, reporting whether it existed.
// Cached results for its hash stay valid (they are version-pinned) and
// age out of the LRU. With durable storage the drop is logged so the
// program stays gone after a restart; the in-memory drop stands even if
// the append fails (the error reports the durability gap).
func (s *Service) Unregister(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.progs[name]
	if !ok {
		return false, nil
	}
	delete(s.progs, name)
	if s.log != nil {
		if _, err := s.log.AppendUnregister(name); err != nil {
			return true, fmt.Errorf("service: persisting unregistration of %s: %w", name, err)
		}
	}
	return true, nil
}

// CommitInfo describes an applied commit.
type CommitInfo struct {
	Version  int64
	Inserted int
	Deleted  int
	// Maintained maps each registered program to the time spent updating
	// its materialized fixpoint for this commit.
	Maintained map[string]time.Duration
}

// Commit atomically applies deletions then insertions to the EDB store,
// publishes the next version, and incrementally maintains every
// registered program's fixpoint. The batch is validated against the store
// and against every registered program before anything mutates; on error
// no version is created and no view changes. With durable storage the
// commit is appended to the WAL between the store publish and the
// maintenance pass — under Fsync "always" an acknowledged commit is on
// disk; a WAL failure fails the commit and poisons the log, so no later
// commit can be acknowledged past the gap. Maintenance runs under the
// service's lifetime context only (never a request context): a commit
// must finish its maintenance or the affected view is unusable, so only
// Close aborts it — and a registration whose maintenance was aborted is
// dropped, counted by datalog_programs_dropped_total.
func (s *Service) Commit(insert, del []datalog.Fact) (CommitInfo, error) {
	s.mu.Lock()
	info, err := s.commitLocked(insert, del, true)
	s.mu.Unlock()
	if err != nil {
		s.met.commitErrors.Inc()
	}
	return info, err
}

// commitLocked applies one commit; the caller holds mu. persist=false is
// WAL replay: the record is already durable, so nothing is appended, no
// checkpoint is triggered, and no request metrics are recorded.
func (s *Service) commitLocked(insert, del []datalog.Fact, persist bool) (CommitInfo, error) {
	start := time.Now()
	if err := s.root.Err(); err != nil {
		return CommitInfo{}, ErrClosed
	}
	for _, reg := range s.progs {
		if err := reg.inc.Check(insert...); err != nil {
			return CommitInfo{}, fmt.Errorf("program %s: %w", reg.name, err)
		}
		if err := reg.inc.Check(del...); err != nil {
			return CommitInfo{}, fmt.Errorf("program %s: %w", reg.name, err)
		}
	}
	snap, err := s.store.Commit(insert, del)
	if err != nil {
		return CommitInfo{}, err
	}
	if persist && s.log != nil {
		if _, err := s.log.AppendCommit(snap.Version, insert, del); err != nil {
			// The version is published in memory but not durable. The log's
			// sticky error refuses every later append, so no subsequent
			// commit can be acknowledged either — the durable prefix stays a
			// prefix, and a restart recovers to the last logged version.
			return CommitInfo{}, fmt.Errorf("service: persisting commit %d: %w", snap.Version, err)
		}
	}
	info := CommitInfo{Version: snap.Version, Inserted: snap.Inserted, Deleted: snap.Deleted,
		Maintained: map[string]time.Duration{}}
	deltas := map[string]datalog.Delta{}
	for _, reg := range s.progs {
		mstart := time.Now()
		roundsBefore := reg.inc.Rounds()
		if err := reg.inc.DeleteContext(s.root, del...); err != nil {
			return info, s.maintenanceFailed(reg, err)
		}
		delDelta := reg.inc.LastDelta()
		if err := reg.inc.InsertContext(s.root, insert...); err != nil {
			return info, s.maintenanceFailed(reg, err)
		}
		// The commit's net view change is the delete pass composed with
		// the insert pass (a tuple removed then re-derived cancels out).
		deltas[reg.name] = datalog.MergeDeltas(delDelta, reg.inc.LastDelta())
		reg.version = snap.Version
		reg.maintainLast = time.Since(mstart)
		reg.maintainTotal += reg.maintainLast
		info.Maintained[reg.name] = reg.maintainLast
		if persist {
			s.met.evalRounds.Add(int64(reg.inc.Rounds() - roundsBefore))
			s.met.maintainSeconds.Observe(reg.maintainLast.Seconds())
		}
	}
	// Publish every commit — replay included, which rebuilds the resume
	// history after a restart — even when no view changed: retaining
	// empty commits keeps the history's version range contiguous, which
	// is what makes resume gap detection sound.
	s.publishCommit(snap.Version, deltas)
	s.cache.invalidateBelow(s.store.Oldest())
	s.commits.Add(1)
	s.sinceCkpt++
	if persist {
		s.met.commits.Inc()
		s.met.commitSeconds.Observe(time.Since(start).Seconds())
		s.maybeCheckpointLocked()
	}
	return info, nil
}

// maybeCheckpointLocked writes a snapshot checkpoint once CheckpointEvery
// commits have accumulated since the last one (counting replayed commits,
// so a recovery with a long replay re-checkpoints promptly). A checkpoint
// failure does not fail the commit — the commit is already durable in the
// WAL — but the counter is left alone so the next commit retries.
func (s *Service) maybeCheckpointLocked() {
	if s.log == nil || s.cfg.CheckpointEvery < 0 || s.sinceCkpt < s.cfg.CheckpointEvery {
		return
	}
	snap := s.store.Latest()
	st := &storage.CheckpointState{
		Universe: s.cfg.Universe,
		Version:  snap.Version,
		LSN:      s.log.LastLSN(),
		DB:       snap.DB,
	}
	for _, reg := range s.progs {
		st.Programs = append(st.Programs, storage.Program{Name: reg.name, Source: reg.source})
	}
	if err := s.log.WriteCheckpoint(st); err != nil {
		s.met.checkpointErrors.Inc()
		return
	}
	s.sinceCkpt = 0
}

// maintenanceFailed handles a registration whose maintenance errored
// mid-commit. A broken view (aborted fixpoint) cannot serve another read
// or update, so the registration is dropped rather than left poisoned.
func (s *Service) maintenanceFailed(reg *registration, err error) error {
	if reg.inc.Err() != nil {
		delete(s.progs, reg.name)
		s.met.programsDropped.Inc()
		return fmt.Errorf("program %s: maintenance aborted, registration dropped: %w", reg.name, err)
	}
	return fmt.Errorf("program %s: %w", reg.name, err)
}

// QueryRequest asks for one IDB relation of a program at a version.
type QueryRequest struct {
	// Program names a registration; Source is inline program text for
	// ad-hoc queries. Exactly one must be set.
	Program string
	Source  string
	// Pred is the IDB predicate to read; empty means the program's goal.
	Pred string
	// Version pins the EDB version; <0 means the latest.
	Version int64
	// Bind, when non-nil, must have one entry per argument of Pred: a
	// non-nil entry binds that position to its value, nil leaves it free.
	// A query with at least one bound position is answered goal-directed
	// through the magic-set pipeline; an all-free (or nil) Bind falls
	// back to the unrewritten view — materialized, cached, or evaluated
	// from scratch as before.
	Bind []*int
	// Limit caps the number of tuples returned (0 = all). Non-streaming
	// results are in the canonical datalog.CompareTuples order, so a
	// limited page is a stable prefix; QueryResult.NextCursor resumes the
	// next page.
	Limit int
	// Cursor resumes a paginated read strictly after the tuple a previous
	// page's NextCursor named (comma-joined components). Cursors are
	// defined only over the canonical sorted order, so a request with a
	// cursor is always served from the sorted answer set.
	Cursor string
}

// QueryResult is the answer to one query.
type QueryResult struct {
	Pred    string
	Version int64
	Tuples  []datalog.Tuple
	// Origin reports how the result was obtained: "cache", "materialized"
	// (registered program at its current version), "eval" (from-scratch
	// evaluation of a snapshot) or "magic" (goal-directed evaluation of
	// the magic-set rewrite).
	Origin string
	// Goal echoes the binding pattern of a goal-directed query in
	// datalog.Goal.String form (e.g. "S(0,_)"); empty otherwise.
	Goal string
	// GoalStats carries the magic pipeline's counters (demand-set size
	// among them) for Origin "magic"; nil otherwise.
	GoalStats *magic.GoalStats
	// NextCursor is set when Limit truncated the (canonically sorted)
	// answer set: passing it back as QueryRequest.Cursor returns the next
	// page. Empty on the final page.
	NextCursor string
}

// Query is QueryContext with a background context.
func (s *Service) Query(req QueryRequest) (QueryResult, error) {
	return s.QueryContext(context.Background(), req)
}

// QueryContext returns the tuples of one IDB predicate at an EDB version.
// Current-version queries of registered programs read the materialized
// fixpoint; anything else — historical versions, ad-hoc programs — is
// evaluated from the pinned snapshot on the bounded executor under ctx
// (plus the per-query timeout and the service lifetime): a cancelled
// client stops queueing immediately and aborts a running evaluation
// within one fixpoint round. Results are cached by (program hash,
// predicate, version), goal-directed results additionally by binding
// pattern. A request with bound positions (Bind) is answered through
// the magic-set pipeline (see goalQuery); an unbound request uses the
// incremental/materialized path unchanged.
func (s *Service) QueryContext(ctx context.Context, req QueryRequest) (QueryResult, error) {
	s.queries.Add(1)
	s.met.queries.Inc()
	start := time.Now()
	var res QueryResult
	var err error
	if req.Limit < 0 {
		err = fmt.Errorf("service: negative limit %d", req.Limit)
	} else {
		res, err = s.queryContext(ctx, req)
	}
	if err == nil && (req.Limit > 0 || req.Cursor != "") {
		// Every non-streaming origin returns the canonical sorted order
		// (see datalog.CompareTuples), so the page boundary is stable
		// across repeated reads of the same version.
		res.Tuples, res.NextCursor, err = pageTuples(res.Tuples, req.Cursor, req.Limit)
	}
	s.met.querySeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		s.met.queryErrors.Inc()
		return QueryResult{}, err
	}
	return res, err
}

// resolveQuery resolves the program (registered by name or parsed from
// inline source), target predicate (defaulting to the program's goal) and
// pinned version (<0 means latest) of a query or explain request. reg is
// non-nil iff the request named a registration.
func (s *Service) resolveQuery(program, source, pred string, version int64) (prog *datalog.Program, hash string, reg *registration, rpred string, rversion int64, err error) {
	switch {
	case program != "" && source != "":
		return nil, "", nil, "", 0, fmt.Errorf("service: query must name a registered program or carry source, not both")
	case program != "":
		s.mu.RLock()
		reg = s.progs[program]
		s.mu.RUnlock()
		if reg == nil {
			return nil, "", nil, "", 0, fmt.Errorf("service: no program registered as %q", program)
		}
		prog, hash = reg.prog, reg.hash
	case source != "":
		p, err := datalog.Parse(source)
		if err != nil {
			return nil, "", nil, "", 0, err
		}
		if err := datalog.Validate(p); err != nil {
			return nil, "", nil, "", 0, err
		}
		prog, hash = p, ProgramHash(p)
	default:
		return nil, "", nil, "", 0, fmt.Errorf("service: query names no program and carries no source")
	}
	if pred == "" {
		pred = prog.Goal
	}
	if !prog.IDBs()[pred] {
		return nil, "", nil, "", 0, fmt.Errorf("service: %q is not an IDB predicate of the program", pred)
	}
	if version < 0 {
		version = s.store.Version()
	}
	return prog, hash, reg, pred, version, nil
}

func (s *Service) queryContext(ctx context.Context, req QueryRequest) (QueryResult, error) {
	if err := s.root.Err(); err != nil {
		return QueryResult{}, ErrClosed
	}
	prog, hash, reg, pred, version, err := s.resolveQuery(req.Program, req.Source, req.Pred, req.Version)
	if err != nil {
		return QueryResult{}, err
	}
	if boundCount(req.Bind) > 0 {
		return s.goalQuery(ctx, prog, hash, pred, version, req.Bind)
	}
	key := cacheKey{hash: hash, pred: pred, version: version}
	if tuples, ok := s.cache.get(key); ok {
		s.met.cacheHits.Inc()
		return QueryResult{Pred: pred, Version: version, Tuples: tuples, Origin: "cache"}, nil
	}
	s.met.cacheMisses.Inc()

	// Materialized fast path: a registered program at the version its
	// view reflects is a shared-lock map read, no evaluation.
	if reg != nil {
		s.mu.RLock()
		if reg.version == version {
			tuples := reg.inc.Result().IDB[pred].Tuples()
			s.mu.RUnlock()
			s.cache.put(key, tuples)
			return QueryResult{Pred: pred, Version: version, Tuples: tuples, Origin: "materialized"}, nil
		}
		s.mu.RUnlock()
	}

	// Historical or ad-hoc: evaluate the pinned snapshot. The snapshot is
	// immutable, so it is cloned per evaluation (Eval registers join
	// indexes on EDB relations, which must not race across queries).
	snap, ok := s.store.At(version)
	if !ok {
		return QueryResult{}, fmt.Errorf("service: version %d is not retained (oldest is %d, latest %d)",
			version, s.store.Oldest(), s.store.Version())
	}
	ctx, done := s.scoped(ctx, s.cfg.QueryTimeout)
	defer done()
	var tuples []datalog.Tuple
	var evalErr error
	err = s.exec.do(ctx, func() {
		s.scratchEval.Add(1)
		s.met.scratchEvals.Inc()
		res, err := datalog.EvalContext(ctx, prog, snap.DB.Clone(), s.optsFor(snap))
		if res != nil {
			s.met.evalRounds.Add(int64(res.Rounds))
		}
		if err != nil {
			evalErr = err
			return
		}
		s.observeEstimation(prog, snap, res.Stats)
		tuples = res.IDB[pred].Tuples()
	})
	if err != nil {
		return QueryResult{}, err
	}
	if evalErr != nil {
		return QueryResult{}, evalErr
	}
	s.cache.put(key, tuples)
	return QueryResult{Pred: pred, Version: version, Tuples: tuples, Origin: "eval"}, nil
}

// boundCount counts the bound positions of a wire binding.
func boundCount(bind []*int) int {
	n := 0
	for _, b := range bind {
		if b != nil {
			n++
		}
	}
	return n
}

// goalQuery answers a bound query through the magic-set pipeline: the
// program is rewritten for the binding's adornment (cached by program
// hash + adornment), the rewrite is seeded with the bound values, and
// the rewritten program is evaluated against a clone of the pinned
// snapshot on the bounded executor. The registered incremental view is
// never touched — goal-directed evaluation works on snapshot clones, so
// a cancelled or failed goal query cannot poison maintained state.
func (s *Service) goalQuery(ctx context.Context, prog *datalog.Program, hash, pred string, version int64, bind []*int) (QueryResult, error) {
	arity := prog.Arities()[pred]
	if len(bind) != arity {
		return QueryResult{}, fmt.Errorf("service: bind has %d positions, predicate %s has arity %d", len(bind), pred, arity)
	}
	goal := datalog.Goal{Pred: pred, Bound: make([]bool, arity), Value: make([]int, arity)}
	for i, b := range bind {
		if b != nil {
			goal.Bound[i] = true
			goal.Value[i] = *b
		}
	}
	s.met.goalQueries.Inc()
	key := cacheKey{hash: hash, pred: pred, version: version, bind: goal.String()}
	if tuples, ok := s.cache.get(key); ok {
		s.met.cacheHits.Inc()
		return QueryResult{Pred: pred, Version: version, Tuples: tuples, Origin: "cache", Goal: goal.String()}, nil
	}
	s.met.cacheMisses.Inc()

	rk := rewriteKey{hash: hash, pred: pred, adornment: magic.AdornmentOf(goal), sip: magic.BoundFirstSIP{}.Name()}
	rw, ok := s.rewrites.get(rk)
	if ok {
		s.met.rewriteHits.Inc()
	} else {
		s.met.rewriteMisses.Inc()
		var err error
		rw, err = magic.NewRewrite(prog, goal, magic.BoundFirstSIP{})
		if err != nil {
			return QueryResult{}, err
		}
		s.rewrites.put(rk, rw)
	}

	snap, ok := s.store.At(version)
	if !ok {
		return QueryResult{}, fmt.Errorf("service: version %d is not retained (oldest is %d, latest %d)",
			version, s.store.Oldest(), s.store.Version())
	}
	ctx, done := s.scoped(ctx, s.cfg.QueryTimeout)
	defer done()
	var goalRes *magic.GoalResult
	var evalErr error
	err := s.exec.do(ctx, func() {
		s.scratchEval.Add(1)
		s.met.scratchEvals.Inc()
		goalRes, evalErr = magic.EvalRewritten(ctx, rw, snap.DB.Clone(), goal, s.optsFor(snap))
		if goalRes != nil && goalRes.Result != nil {
			s.met.evalRounds.Add(int64(goalRes.Result.Rounds))
		}
	})
	if err != nil {
		return QueryResult{}, err
	}
	if evalErr != nil {
		return QueryResult{}, evalErr
	}
	if seeded, err := rw.Seeded(goal); err == nil {
		s.observeEstimation(seeded, snap, goalRes.Result.Stats)
	}
	s.met.demandFacts.Observe(float64(goalRes.Stats.DemandFacts))
	s.cache.put(key, goalRes.Answers)
	stats := goalRes.Stats
	return QueryResult{
		Pred: pred, Version: version, Tuples: goalRes.Answers,
		Origin: "magic", Goal: goal.String(), GoalStats: &stats,
	}, nil
}

// ExplainRequest asks for the join plan of a query without serving its
// tuples from cache: same resolution fields as QueryRequest.
type ExplainRequest struct {
	Program string
	Source  string
	Pred    string
	Version int64
	Bind    []*int
}

// ExplainResult is the planner's account of how a query would run (and,
// because the plan is evaluated to gather actuals, how it did run).
type ExplainResult struct {
	Pred    string
	Version int64
	// Goal is the binding pattern for a bound request (e.g. "S(0,_)");
	// empty when every position is free.
	Goal string
	// Strategy and Epoch identify the plan cache key components beyond the
	// program hash.
	Strategy string
	Epoch    uint64
	// CacheHit reports whether the plan came out of the plan cache.
	CacheHit bool
	// Plan is the full per-rule plan: atom order, probe masks, estimates.
	Plan *plan.ProgramPlan
	// Actuals are the per-rule evaluation statistics of the planned
	// program, index-aligned with Plan.Rules.
	Actuals []datalog.RuleStats
	// Stream is the streaming executor's per-step stream/materialize
	// decisions for this query (rule- and step-aligned with Plan.Rules),
	// including the estimated peak buffered-row footprint; Streaming is
	// false with Reason "recursive" when a streamed run would fall back.
	Stream *stream.Decisions
}

// Explain is ExplainContext with a background context.
func (s *Service) Explain(req ExplainRequest) (ExplainResult, error) {
	return s.ExplainContext(context.Background(), req)
}

// ExplainContext plans a query and evaluates the planned program against
// the pinned snapshot to report estimated versus actual rows per rule.
// Bound requests are explained as the service would run them: the plan
// shown is the plan of the magic-set-rewritten, seeded program. Requires
// the planner (Config.NoPlanner unset).
func (s *Service) ExplainContext(ctx context.Context, req ExplainRequest) (ExplainResult, error) {
	if err := s.root.Err(); err != nil {
		return ExplainResult{}, ErrClosed
	}
	if s.planner == nil {
		return ExplainResult{}, fmt.Errorf("service: planner is disabled")
	}
	prog, _, _, pred, version, err := s.resolveQuery(req.Program, req.Source, req.Pred, req.Version)
	if err != nil {
		return ExplainResult{}, err
	}
	snap, ok := s.store.At(version)
	if !ok {
		return ExplainResult{}, fmt.Errorf("service: version %d is not retained (oldest is %d, latest %d)",
			version, s.store.Oldest(), s.store.Version())
	}
	out := ExplainResult{Pred: pred, Version: version, Strategy: s.planner.Strategy()}

	// For a bound request, explain the program the service actually
	// evaluates: the magic rewrite seeded with the bound values.
	target := prog
	if boundCount(req.Bind) > 0 {
		arity := prog.Arities()[pred]
		if len(req.Bind) != arity {
			return ExplainResult{}, fmt.Errorf("service: bind has %d positions, predicate %s has arity %d", len(req.Bind), pred, arity)
		}
		goal := datalog.Goal{Pred: pred, Bound: make([]bool, arity), Value: make([]int, arity)}
		for i, b := range req.Bind {
			if b != nil {
				goal.Bound[i] = true
				goal.Value[i] = *b
			}
		}
		rw, err := magic.NewRewrite(prog, goal, magic.BoundFirstSIP{})
		if err != nil {
			return ExplainResult{}, err
		}
		if target, err = rw.Seeded(goal); err != nil {
			return ExplainResult{}, err
		}
		out.Goal = goal.String()
	}

	pp, hit := s.planner.PlanProgram(target, snap.Stats)
	out.Plan, out.CacheHit, out.Epoch = pp, hit, pp.Epoch
	if sd, err := stream.Explain(target, pred, pp); err == nil {
		out.Stream = sd
	}

	// Evaluate the planned program for actual row counts. Runs on the
	// bounded executor like any other from-scratch query.
	ctx, done := s.scoped(ctx, s.cfg.QueryTimeout)
	defer done()
	var evalErr error
	err = s.exec.do(ctx, func() {
		s.scratchEval.Add(1)
		s.met.scratchEvals.Inc()
		res, err := datalog.EvalContext(ctx, pp.Program(), snap.DB.Clone(), s.opts)
		if res != nil {
			s.met.evalRounds.Add(int64(res.Rounds))
		}
		if err != nil {
			evalErr = err
			return
		}
		out.Actuals = res.Stats.Rules
		for _, re := range plan.EstimationErrors(pp, res.Stats) {
			s.met.planEstError.Observe(re.AbsLog2)
		}
	})
	if err != nil {
		return ExplainResult{}, err
	}
	if evalErr != nil {
		return ExplainResult{}, evalErr
	}
	return out, nil
}

// ProgramStats describes one registered program in Stats.
type ProgramStats struct {
	Name            string              `json:"name"`
	Hash            string              `json:"hash"`
	Version         int64               `json:"version"`
	Goal            string              `json:"goal"`
	Updates         int                 `json:"updates"`
	Rounds          int                 `json:"rounds"`
	Derivations     int                 `json:"derivations"`
	IDBSizes        map[string]int      `json:"idb_sizes"`
	MaintainTotalNs int64               `json:"maintain_total_ns"`
	MaintainLastNs  int64               `json:"maintain_last_ns"`
	Rules           []datalog.RuleStats `json:"rules"`
	// Sharding carries the coordinator's cross-shard counters when the
	// service runs with Config.Shards > 1; nil on a single-node service.
	Sharding *shard.Stats `json:"sharding,omitempty"`
}

// SnapshotStats describes one retained EDB version in Stats.
type SnapshotStats struct {
	Version  int64 `json:"version"`
	Facts    int   `json:"facts"`
	Inserted int   `json:"inserted"`
	Deleted  int   `json:"deleted"`
}

// Stats is the service-wide observability snapshot served at /v1/stats.
type Stats struct {
	Universe  int             `json:"universe"`
	Version   int64           `json:"version"`
	Oldest    int64           `json:"oldest_version"`
	Commits   int64           `json:"commits"`
	Queries   int64           `json:"queries"`
	Evals     int64           `json:"scratch_evals"`
	Snapshots []SnapshotStats `json:"snapshots"`
	Programs  []ProgramStats  `json:"programs"`
	Cache     struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Entries   int   `json:"entries"`
		Capacity  int   `json:"capacity"`
	} `json:"cache"`
	Executor struct {
		Workers  int   `json:"workers"`
		InFlight int64 `json:"in_flight"`
		Peak     int64 `json:"peak"`
		Total    int64 `json:"total"`
	} `json:"executor"`
	Magic struct {
		GoalQueries   int64 `json:"goal_queries"`
		RewriteHits   int64 `json:"rewrite_hits"`
		RewriteMisses int64 `json:"rewrite_misses"`
		Entries       int   `json:"rewrite_entries"`
		Capacity      int   `json:"rewrite_capacity"`
	} `json:"magic"`
	Stream struct {
		Queries      int64 `json:"queries"`
		Rows         int64 `json:"rows"`
		Fallbacks    int64 `json:"fallbacks"`
		Active       int64 `json:"active"`
		PeakBuffered int64 `json:"peak_buffered_rows"`
	} `json:"stream"`
	Subscribe struct {
		Active    int   `json:"active"`
		Events    int64 `json:"events"`
		Replayed  int64 `json:"replayed"`
		Dropped   int64 `json:"dropped"`
		PeakQueue int64 `json:"peak_queue"`
		History   int   `json:"history"`
		Window    int   `json:"window"`
	} `json:"subscribe"`
	Sharding struct {
		Enabled bool `json:"enabled"`
		Workers int  `json:"workers"`
		// Aggregates across every registered program's coordinator.
		ExchangeRounds  int64 `json:"exchange_rounds"`
		ExchangedTuples int64 `json:"exchanged_tuples"`
		Rebuilds        int64 `json:"rebuilds"`
	} `json:"sharding"`
	DeprecatedRequests int64 `json:"deprecated_requests"`
	Planner            struct {
		Enabled     bool   `json:"enabled"`
		Built       int64  `json:"plans_built"`
		CacheHits   int64  `json:"cache_hits"`
		CacheMisses int64  `json:"cache_misses"`
		RulesPruned int64  `json:"rules_pruned"`
		AtomsPruned int64  `json:"atoms_pruned"`
		Entries     int64  `json:"cache_entries"`
		Epoch       string `json:"stats_epoch"` // latest snapshot's catalog fingerprint, hex
	} `json:"planner"`
	Storage struct {
		Enabled bool   `json:"enabled"`
		Dir     string `json:"dir,omitempty"`
		Fsync   string `json:"fsync,omitempty"`
		// Cumulative WAL counters for this process.
		Records       int64 `json:"wal_records"`
		AppendedBytes int64 `json:"wal_bytes"`
		Fsyncs        int64 `json:"wal_fsyncs"`
		Segments      int64 `json:"wal_segments"`
		Checkpoints   int64 `json:"checkpoints"`
		// What startup recovery rebuilt (see RecoveryInfo).
		RecoveredVersion  int64 `json:"recovered_version"`
		CheckpointVersion int64 `json:"checkpoint_version"`
		ReplayedCommits   int   `json:"replayed_commits"`
		TornTail          bool  `json:"torn_tail"`
		CorruptRecords    int   `json:"corrupt_records"`
		DroppedBytes      int64 `json:"dropped_bytes"`
		BadCheckpoints    int   `json:"bad_checkpoints"`
	} `json:"storage"`
}

// Stats assembles the current counters.
func (s *Service) Stats() Stats {
	var st Stats
	st.Universe = s.cfg.Universe
	st.Commits = s.commits.Load()
	st.Queries = s.queries.Load()
	st.Evals = s.scratchEval.Load()
	for _, snap := range s.store.Snapshots() {
		st.Snapshots = append(st.Snapshots, SnapshotStats{
			Version: snap.Version, Facts: snap.Facts,
			Inserted: snap.Inserted, Deleted: snap.Deleted,
		})
	}
	st.Version = st.Snapshots[len(st.Snapshots)-1].Version
	st.Oldest = st.Snapshots[0].Version
	s.mu.RLock()
	for _, reg := range s.progs {
		res := reg.inc.Result()
		sizes := map[string]int{}
		for name, rel := range res.IDB {
			sizes[name] = rel.Size()
		}
		var rules []datalog.RuleStats
		if res.Stats != nil {
			rules = res.Stats.Rules
		}
		ps := ProgramStats{
			Name: reg.name, Hash: reg.hash, Version: reg.version,
			Goal: reg.prog.Goal, Updates: reg.inc.Updates(),
			Rounds: res.Rounds, Derivations: res.Derivations, IDBSizes: sizes,
			MaintainTotalNs: reg.maintainTotal.Nanoseconds(),
			MaintainLastNs:  reg.maintainLast.Nanoseconds(),
			Rules:           rules,
		}
		if reg.coord != nil {
			sh := reg.coord.Stats()
			ps.Sharding = &sh
		}
		st.Programs = append(st.Programs, ps)
	}
	s.mu.RUnlock()
	sort.Slice(st.Programs, func(i, j int) bool { return st.Programs[i].Name < st.Programs[j].Name })
	st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.Entries = s.cache.counters()
	st.Cache.Capacity = s.cache.cap
	st.Magic.GoalQueries = s.met.goalQueries.Value()
	st.Magic.RewriteHits, st.Magic.RewriteMisses, _, st.Magic.Entries = s.rewrites.counters()
	st.Magic.Capacity = s.rewrites.cap
	st.Stream.Queries = s.met.streamQueries.Value()
	st.Stream.Rows = s.met.streamRows.Value()
	st.Stream.Fallbacks = s.met.streamFallbacks.Value()
	st.Stream.Active = s.met.streamsActive.Value()
	st.Stream.PeakBuffered = s.met.streamPeakBuf.Value()
	st.Subscribe.Active = s.subs.active()
	st.Subscribe.Events = s.subs.events.Load()
	st.Subscribe.Replayed = s.subs.replayed.Load()
	st.Subscribe.Dropped = s.subs.dropped.Load()
	st.Subscribe.PeakQueue = s.subs.peakQueue.Load()
	st.Subscribe.History = s.subs.histLen()
	st.Subscribe.Window = s.subs.window
	st.DeprecatedRequests = s.met.deprecatedReqs.Value()
	if s.cfg.Shards > 1 {
		st.Sharding.Enabled = true
		st.Sharding.Workers = s.cfg.Shards
		agg := s.shardStats()
		st.Sharding.ExchangeRounds = agg.ExchangeRounds
		st.Sharding.ExchangedTuples = agg.ExchangedTuples
		st.Sharding.Rebuilds = agg.Rebuilds
	}
	st.Executor.Workers = s.exec.workers()
	st.Executor.InFlight = s.exec.inFlight.Load()
	st.Executor.Peak = s.exec.peak.Load()
	st.Executor.Total = s.exec.total.Load()
	if s.planner != nil {
		c := s.planner.Counters()
		st.Planner.Enabled = true
		st.Planner.Built = c.Built
		st.Planner.CacheHits = c.CacheHits
		st.Planner.CacheMisses = c.CacheMisses
		st.Planner.RulesPruned = c.RulesPruned
		st.Planner.AtomsPruned = c.AtomsPruned
		st.Planner.Entries = c.CacheEntries
		st.Planner.Epoch = fmt.Sprintf("%016x", s.store.Latest().Stats.Fingerprint())
	}
	if s.log != nil {
		c := s.log.Counters()
		st.Storage.Enabled = true
		st.Storage.Dir = s.log.Dir()
		st.Storage.Fsync = s.log.Policy().String()
		st.Storage.Records = c.Records
		st.Storage.AppendedBytes = c.AppendedBytes
		st.Storage.Fsyncs = c.Fsyncs
		st.Storage.Segments = c.Segments
		st.Storage.Checkpoints = c.Checkpoints
		st.Storage.RecoveredVersion = s.recovered.Version
		st.Storage.CheckpointVersion = s.recovered.CheckpointVersion
		st.Storage.ReplayedCommits = s.recovered.ReplayedCommits
		st.Storage.TornTail = s.recovered.TornTail
		st.Storage.CorruptRecords = s.recovered.CorruptRecords
		st.Storage.DroppedBytes = s.recovered.DroppedBytes
		st.Storage.BadCheckpoints = s.recovered.BadCheckpoints
	}
	return st
}
