package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datalog"
)

const tcProgram = "S(x,y) :- E(x,y). S(x,y) :- E(x,z), S(z,y). goal S."

// TestV1Routes drives the whole versioned surface and checks it behaves
// exactly like the legacy paths it aliases.
func TestV1Routes(t *testing.T) {
	s, err := New(Config{Universe: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	if w := post(t, h, "/v1/register", `{"name":"tc","program":"`+tcProgram+`"}`); w.Code != http.StatusOK {
		t.Fatalf("/v1/register: %d %s", w.Code, w.Body)
	}
	if w := post(t, h, "/v1/commit", `{"insert":[{"pred":"E","tuple":[0,1]},{"pred":"E","tuple":[1,2]}]}`); w.Code != http.StatusOK {
		t.Fatalf("/v1/commit: %d %s", w.Code, w.Body)
	}
	w := post(t, h, "/v1/query", `{"program":"tc"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/query: %d %s", w.Code, w.Body)
	}
	var q QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Count != 3 || q.Pred != "S" || q.Version != 1 {
		t.Fatalf("query response %+v", q)
	}
	// The same query on the legacy alias hits the same cache entry.
	w = post(t, h, "/query", `{"program":"tc"}`)
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Origin != "cache" {
		t.Fatalf("legacy alias did not share state with /v1: %+v", q)
	}
	if w := post(t, h, "/v1/unregister", `{"name":"tc"}`); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "true") {
		t.Fatalf("/v1/unregister: %d %s", w.Code, w.Body)
	}
	for _, path := range []string{"/v1/stats", "/v1/metrics"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, rw.Code, rw.Body)
		}
	}
}

// TestErrorEnvelopeByPath pins the error shapes: /v1 carries the
// structured {code, message} envelope, the legacy paths keep {"error"}.
func TestErrorEnvelopeByPath(t *testing.T) {
	s, err := New(Config{Universe: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	w := post(t, h, "/v1/query", `{"program":"missing"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("/v1/query bad program: %d", w.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "bad_request" || !strings.Contains(env.Message, "missing") {
		t.Fatalf("v1 envelope %+v", env)
	}

	w = post(t, h, "/query", `{"program":"missing"}`)
	var legacy ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Error == "" || strings.Contains(w.Body.String(), `"code"`) {
		t.Fatalf("legacy path leaked the v1 envelope: %s", w.Body)
	}

	// Method errors go through the same split.
	req := httptest.NewRequest(http.MethodGet, "/v1/query", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: %d", rw.Code)
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "method_not_allowed" {
		t.Fatalf("method error envelope %+v", env)
	}
}

// TestMetricsEndpoint exercises both exposition formats after known
// traffic, pinning the counter values and the Prometheus text layout.
func TestMetricsEndpoint(t *testing.T) {
	s, err := New(Config{Universe: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	post(t, h, "/v1/register", `{"name":"tc","program":"`+tcProgram+`"}`)
	post(t, h, "/v1/commit", `{"insert":[{"pred":"E","tuple":[0,1]},{"pred":"E","tuple":[1,2]}]}`)
	post(t, h, "/v1/query", `{"program":"tc"}`) // cache miss, materialized read
	post(t, h, "/v1/query", `{"program":"tc"}`) // cache hit

	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK || rw.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("/v1/metrics JSON: %d %s", rw.Code, rw.Header().Get("Content-Type"))
	}
	var snap map[string]struct {
		Type  string  `json:"type"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON did not parse: %v\n%s", err, rw.Body)
	}
	for name, want := range map[string]float64{
		"datalog_commits_total":       1,
		"datalog_queries_total":       2,
		"datalog_cache_hits_total":    1,
		"datalog_cache_misses_total":  1,
		"datalog_store_version":       1,
		"datalog_programs_registered": 1,
		"datalog_query_errors_total":  0,
	} {
		got, ok := snap[name]
		if !ok {
			t.Fatalf("metrics JSON missing %s:\n%s", name, rw.Body)
		}
		if got.Value != want {
			t.Errorf("%s = %v, want %v", name, got.Value, want)
		}
	}
	if snap["datalog_eval_rounds_total"].Value <= 0 {
		t.Errorf("datalog_eval_rounds_total = %v, want > 0", snap["datalog_eval_rounds_total"].Value)
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/metrics?format=prometheus", nil)
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type %q", ct)
	}
	out := rw.Body.String()
	for _, want := range []string{
		"# TYPE datalog_commits_total counter",
		"datalog_commits_total 1",
		"# TYPE datalog_store_version gauge",
		"datalog_store_version 1",
		"# TYPE datalog_query_seconds histogram",
		`datalog_query_seconds_bucket{le="+Inf"} 2`,
		"datalog_query_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
	// The Accept header selects the text format too.
	req = httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if !strings.Contains(rw.Body.String(), "# TYPE datalog_commits_total counter") {
		t.Fatalf("Accept: text/plain did not select exposition text:\n%s", rw.Body)
	}
}

// TestQueryTimeout pins the per-query deadline: a from-scratch evaluation
// under an already-exhausted budget fails with DeadlineExceeded, and over
// HTTP the v1 envelope reports it as a 504.
func TestQueryTimeout(t *testing.T) {
	s, err := New(Config{Universe: 8, QueryTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Commit([]datalog.Fact{edge(0, 1), edge(1, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	// Ad-hoc source forces a from-scratch evaluation, the path the
	// timeout governs.
	_, err = s.Query(QueryRequest{Source: tcProgram, Version: -1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("query under 1ns budget: err = %v, want DeadlineExceeded", err)
	}

	w := post(t, s.Handler(), "/v1/query", `{"source":"`+tcProgram+`"}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("/v1/query under 1ns budget: %d %s", w.Code, w.Body)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "deadline_exceeded" {
		t.Fatalf("timeout envelope %+v", env)
	}

	// Materialized reads of registered programs are unaffected: no
	// evaluation happens, so the exhausted budget never applies.
	if _, err := s.Register("tc", tcProgram); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(QueryRequest{Program: "tc", Version: -1})
	if err != nil || len(res.Tuples) != 3 {
		t.Fatalf("materialized read under 1ns budget: %v %+v", err, res)
	}
}

// TestCloseAbortsAndRefuses runs concurrent from-scratch queries while
// the service shuts down (run under -race): in-flight evaluations abort
// via the lifetime context, later calls fail with ErrClosed, and nothing
// panics or deadlocks.
func TestCloseAbortsAndRefuses(t *testing.T) {
	s, err := New(Config{Universe: 64, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	facts := make([]datalog.Fact, 0, 63)
	for i := 0; i < 63; i++ {
		facts = append(facts, edge(i, i+1))
	}
	if _, err := s.Commit(facts, nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	started := make(chan struct{}, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case started <- struct{}{}:
				default:
				}
				_, err := s.Query(QueryRequest{Source: tcProgram, Version: 1})
				if err != nil {
					if errors.Is(err, ErrClosed) || errors.Is(err, context.Canceled) {
						return
					}
					t.Errorf("query during shutdown: %v", err)
					return
				}
			}
		}()
	}
	<-started
	s.Close()
	wg.Wait()

	if _, err := s.Query(QueryRequest{Source: tcProgram, Version: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Commit([]datalog.Fact{edge(0, 2)}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Register("late", tcProgram); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after Close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestQueryContextCancelled pins client-disconnect behavior without HTTP:
// a context cancelled before the call returns context.Canceled.
func TestQueryContextCancelled(t *testing.T) {
	s, err := New(Config{Universe: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Commit([]datalog.Fact{edge(0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.QueryContext(ctx, QueryRequest{Source: tcProgram, Version: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: %v, want context.Canceled", err)
	}
}
