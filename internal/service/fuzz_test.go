package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/datalog"
)

// Fuzz targets for the JSON front end: arbitrary bodies on /query and
// /commit must produce an HTTP response — malformed JSON, unknown fields,
// bad atoms, arity mismatches, unknown predicates and out-of-universe
// elements are all errors, never panics. Run for real with
// `go test -fuzz=FuzzHTTPQuery ./internal/service`; the seeds execute as
// ordinary tests.

// fuzzService builds one service with a registered program and some data,
// so fuzz inputs can reach the deeper validation paths.
func fuzzService(f *testing.F) *Service {
	f.Helper()
	s, err := New(Config{Universe: 6, History: 4, CacheEntries: 8})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := s.Register("tc", tcSource); err != nil {
		f.Fatal(err)
	}
	if _, err := s.Commit([]datalog.Fact{
		{Pred: "E", Tuple: datalog.Tuple{0, 1}},
		{Pred: "E", Tuple: datalog.Tuple{1, 2}},
	}, nil); err != nil {
		f.Fatal(err)
	}
	return s
}

func fuzzPost(t *testing.T, s *Service, path string, body []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req) // any panic fails the fuzz run
	switch w.Code {
	case http.StatusOK, http.StatusBadRequest:
	default:
		t.Fatalf("%s: unexpected status %d (body %q)", path, w.Code, w.Body)
	}
}

func FuzzHTTPQuery(f *testing.F) {
	s := fuzzService(f)
	seeds := []string{
		`{"program":"tc"}`,
		`{"program":"tc","pred":"S","version":0}`,
		`{"program":"tc","tuple":[0,1]}`,
		`{"source":"S(x,y) :- E(x,y). goal S."}`,
		`{"source":"S(x :- E(x,y)."}`,
		`{"program":"tc","pred":"E"}`,
		`{"program":"nope"}`,
		`{"program":"tc","version":-7}`,
		`{"program":"tc","version":99999}`,
		`{"program":"tc","source":"S(x) :- E(x,x)."}`,
		`{"tuple":[1,2,3,4,5,6,7,8]}`,
		"{\"program\":\"tc\",\"pred\":\"\u0000\"}",
		`{`,
		`null`,
		`[]`,
		`{"version":"latest"}`,
		`{} {}`,
	}
	for _, sd := range seeds {
		f.Add([]byte(sd))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, s, "/query", body)
	})
}

func FuzzHTTPCommit(f *testing.F) {
	s := fuzzService(f)
	seeds := []string{
		`{"insert":[{"pred":"E","tuple":[0,1]}]}`,
		`{"delete":[{"pred":"E","tuple":[0,1]}]}`,
		`{"insert":[{"pred":"E","tuple":[0,1,2]}]}`,
		`{"insert":[{"pred":"S","tuple":[0,1]}]}`,
		`{"insert":[{"pred":"E","tuple":[-1,0]}]}`,
		`{"insert":[{"pred":"E","tuple":[0,99]}]}`,
		`{"insert":[{"pred":"","tuple":[0]}]}`,
		`{"insert":[{"pred":"E"}]}`,
		`{"insert":[{"pred":"Fresh","tuple":[1]},{"pred":"Fresh","tuple":[1,2]}]}`,
		`{"insert":[{"pred":"E","tuple":[0,1]}],"delete":[{"pred":"E","tuple":[0,1]}]}`,
		`{"inserts":[]}`,
		`{"insert":{}}`,
		`{`,
		`null`,
		`0`,
	}
	for _, sd := range seeds {
		f.Add([]byte(sd))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, s, "/commit", body)
	})
}
