package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/datalog"
)

// advProgram is adversarially ordered for a textual evaluator: the rule
// joins the dense E with itself before the two-row R, so textual order
// pays the E⋈E blowup while the planner anchors on R.
const advProgram = "P(x,w) :- E(x,y), E(y,z), R(z,w). goal P."

// advCommit loads a dense-ish E and a tiny R.
func advCommit(t *testing.T, s *Service) {
	t.Helper()
	var insert []datalog.Fact
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j += 2 {
			insert = append(insert, datalog.Fact{Pred: "E", Tuple: datalog.Tuple{i % 16, j % 16}})
		}
	}
	insert = append(insert,
		datalog.Fact{Pred: "R", Tuple: datalog.Tuple{0, 1}},
		datalog.Fact{Pred: "R", Tuple: datalog.Tuple{2, 3}},
	)
	if _, err := s.Commit(insert, nil); err != nil {
		t.Fatal(err)
	}
}

func sortedTuples(in []datalog.Tuple) []datalog.Tuple {
	out := append([]datalog.Tuple(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// TestPlannedServiceEquivalence runs the same queries on a planning and a
// NoPlanner service: free queries, bound (magic) queries and historical
// versions must return identical tuple sets.
func TestPlannedServiceEquivalence(t *testing.T) {
	mk := func(noPlanner bool) *Service {
		s, err := New(Config{Universe: 16, NoPlanner: noPlanner})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		advCommit(t, s)
		if _, err := s.Commit([]datalog.Fact{{Pred: "R", Tuple: datalog.Tuple{4, 5}}}, nil); err != nil {
			t.Fatal(err)
		}
		return s
	}
	planned, textual := mk(false), mk(true)

	zero := 0
	reqs := []QueryRequest{
		{Source: advProgram, Version: -1},
		{Source: advProgram, Version: 1}, // historical: planned against v1's own stats
		{Source: tcProgram, Version: -1},
		{Source: advProgram, Version: -1, Bind: []*int{&zero, nil}}, // magic pipeline
	}
	for i, req := range reqs {
		a, err := planned.Query(req)
		if err != nil {
			t.Fatalf("req %d planned: %v", i, err)
		}
		b, err := textual.Query(req)
		if err != nil {
			t.Fatalf("req %d textual: %v", i, err)
		}
		at, bt := sortedTuples(a.Tuples), sortedTuples(b.Tuples)
		if len(at) != len(bt) {
			t.Fatalf("req %d: %d vs %d tuples", i, len(at), len(bt))
		}
		for k := range at {
			for j := range at[k] {
				if at[k][j] != bt[k][j] {
					t.Fatalf("req %d: tuple %d differs: %v vs %v", i, k, at[k], bt[k])
				}
			}
		}
	}
	if c := planned.Stats().Planner; !c.Enabled || c.Built == 0 {
		t.Fatalf("planning service did not plan: %+v", c)
	}
	if c := textual.Stats().Planner; c.Enabled || c.Built != 0 {
		t.Fatalf("NoPlanner service planned anyway: %+v", c)
	}
}

// TestExplainLocal pins the Explain API: the adversarial rule is
// reordered to anchor on the tiny R relation, estimates and actuals are
// index-aligned, and a repeated explain hits the plan cache.
func TestExplainLocal(t *testing.T) {
	s, err := New(Config{Universe: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	advCommit(t, s)

	res, err := s.Explain(ExplainRequest{Source: advProgram, Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pred != "P" || res.Version != 1 || res.Plan == nil {
		t.Fatalf("explain result %+v", res)
	}
	if len(res.Plan.Rules) != 1 {
		t.Fatalf("want 1 rule plan, got %d", len(res.Plan.Rules))
	}
	rp := res.Plan.Rules[0]
	if !rp.Reordered || len(rp.Steps) != 3 {
		t.Fatalf("adversarial rule not reordered: %+v", rp)
	}
	if rp.Steps[0].Atom[0] != 'R' {
		t.Fatalf("plan did not anchor on the small relation: first step %q", rp.Steps[0].Atom)
	}
	if len(res.Actuals) != len(res.Plan.Rules) {
		t.Fatalf("actuals misaligned: %d vs %d", len(res.Actuals), len(res.Plan.Rules))
	}
	if res.Actuals[0].Derived <= 0 {
		t.Fatalf("explain evaluation derived nothing: %+v", res.Actuals[0])
	}
	if res.CacheHit {
		t.Fatal("first explain reported a plan-cache hit")
	}
	again, err := s.Explain(ExplainRequest{Source: advProgram, Version: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeated explain missed the plan cache")
	}

	// Bound explain goes through the magic rewrite: the plan covers the
	// seeded rewritten program, not the source rules.
	zero := 0
	bound, err := s.Explain(ExplainRequest{Source: advProgram, Version: -1, Bind: []*int{&zero, nil}})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Goal == "" || len(bound.Plan.Rules) < 2 {
		t.Fatalf("bound explain did not cover the rewrite: goal %q, %d rules", bound.Goal, len(bound.Plan.Rules))
	}
}

// TestExplainHTTP drives POST /v1/explain end to end and pins the wire
// shape.
func TestExplainHTTP(t *testing.T) {
	s, err := New(Config{Universe: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	advCommit(t, s)
	post(t, h, "/v1/register", `{"name":"adv","program":"`+advProgram+`"}`)

	w := post(t, h, "/v1/explain", `{"program":"adv"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/explain: %d %s", w.Code, w.Body)
	}
	var resp ExplainResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("explain response did not parse: %v\n%s", err, w.Body)
	}
	if resp.Pred != "P" || resp.Strategy == "" || len(resp.Epoch) != 16 {
		t.Fatalf("explain wire fields %+v", resp)
	}
	if len(resp.Rules) != 1 || !resp.Rules[0].Reordered {
		t.Fatalf("explain wire rules %+v", resp.Rules)
	}
	st := resp.Rules[0].Steps
	if len(st) != 3 || st[0].Atom[0] != 'R' {
		t.Fatalf("explain wire steps %+v", st)
	}
	// Later steps of a join chain probe on already-bound columns.
	if len(st[1].ProbeCols) == 0 && len(st[2].ProbeCols) == 0 {
		t.Fatalf("no probe columns in chained steps: %+v", st)
	}
	if resp.Rules[0].ActualRows <= 0 {
		t.Fatalf("wire actual rows %+v", resp.Rules[0])
	}

	// A planner-less service refuses to explain.
	s2, err := New(Config{Universe: 16, NoPlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if w := post(t, s2.Handler(), "/v1/explain", `{"source":"`+advProgram+`"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("NoPlanner explain: %d %s", w.Code, w.Body)
	}
}

// TestPlannerMetricsSeries checks the planner's obs series are exported
// (and absent with NoPlanner) and move with traffic.
func TestPlannerMetricsSeries(t *testing.T) {
	s, err := New(Config{Universe: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	advCommit(t, s)
	// Two scratch evaluations of the same source: build then cache hit.
	post(t, h, "/v1/register", `{"name":"adv","program":"`+advProgram+`"}`)
	post(t, h, "/v1/query", `{"source":"`+advProgram+`","version":1}`)

	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	var simple map[string]struct {
		Type  string  `json:"type"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &simple); err == nil {
		if simple["datalog_plans_built_total"].Value <= 0 {
			t.Errorf("datalog_plans_built_total = %v, want > 0", simple["datalog_plans_built_total"].Value)
		}
		if simple["datalog_plan_cache_hits_total"].Value <= 0 {
			t.Errorf("datalog_plan_cache_hits_total = %v, want > 0 (register then query share the plan)",
				simple["datalog_plan_cache_hits_total"].Value)
		}
		if simple["datalog_plan_cache_entries"].Value <= 0 {
			t.Errorf("datalog_plan_cache_entries = %v, want > 0", simple["datalog_plan_cache_entries"].Value)
		}
	}
	for _, name := range []string{
		"datalog_plans_built_total", "datalog_plan_cache_hits_total",
		"datalog_plan_cache_misses_total", "datalog_plan_rules_pruned_total",
		"datalog_plan_atoms_pruned_total", "datalog_plan_cache_entries",
		"datalog_plan_estimation_error",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metrics missing %s", name)
		}
	}
	// The estimation-error histogram saw the evaluations.
	var hist map[string]struct {
		Type  string `json:"type"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &hist); err == nil {
		if hist["datalog_plan_estimation_error"].Count <= 0 {
			t.Errorf("datalog_plan_estimation_error count = %d, want > 0", hist["datalog_plan_estimation_error"].Count)
		}
	}

	s2, err := New(Config{Universe: 16, NoPlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rw = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	var snap2 map[string]json.RawMessage
	if err := json.Unmarshal(rw.Body.Bytes(), &snap2); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap2["datalog_plans_built_total"]; ok {
		t.Error("NoPlanner service still exports planner series")
	}
}

// TestSnapshotStatsPerVersion pins the per-snapshot statistics contract:
// each version carries its own catalog, untouched relations share entries
// with the previous snapshot, and big growth changes the fingerprint.
func TestSnapshotStatsPerVersion(t *testing.T) {
	s, err := New(Config{Universe: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Commit([]datalog.Fact{
		{Pred: "E", Tuple: datalog.Tuple{0, 1}},
		{Pred: "R", Tuple: datalog.Tuple{0, 1}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Grow E past a fingerprint bucket; R is untouched.
	var grow []datalog.Fact
	for i := 0; i < 40; i++ {
		grow = append(grow, datalog.Fact{Pred: "E", Tuple: datalog.Tuple{i, (i + 1) % 64}})
	}
	if _, err := s.Commit(grow, nil); err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Store().At(1)
	v2, _ := s.Store().At(2)
	if v1.Stats == nil || v2.Stats == nil {
		t.Fatal("snapshot without a statistics catalog")
	}
	e1, _ := v1.Stats.Rel("E")
	e2, _ := v2.Stats.Rel("E")
	if e1.Rows != 1 || e2.Rows != 40 { // grow includes a duplicate of E(0,1)
		t.Fatalf("per-version E rows: v1=%d v2=%d", e1.Rows, e2.Rows)
	}
	r1, _ := v1.Stats.Rel("R")
	r2, _ := v2.Stats.Rel("R")
	if r1 != r2 {
		t.Error("untouched relation's stats were recollected instead of shared")
	}
	if v1.Stats.Fingerprint() == v2.Stats.Fingerprint() {
		t.Error("40x growth did not change the stats epoch")
	}
}
