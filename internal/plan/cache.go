package plan

import (
	"container/list"
	"sync"
)

// planKey identifies one cacheable planning problem: the program (by
// content hash), the statistics epoch it was costed under, and the
// strategy knobs that shaped the search. A magic-rewritten program
// hashes differently per binding, so goal-directed plans get their own
// lines; a commit that moves no cardinality across a power-of-two
// boundary keeps the epoch, so its plans keep hitting.
type planKey struct {
	hash     string
	epoch    uint64
	strategy string
}

// planCache is a mutex-guarded LRU of finished plans, the same shape as
// the service's result cache. Plans are immutable once built, so a hit
// is returned without copying.
type planCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are *planEntry
	entries map[planKey]*list.Element
}

type planEntry struct {
	key planKey
	pp  *ProgramPlan
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, order: list.New(), entries: map[planKey]*list.Element{}}
}

func (c *planCache) get(key planKey) *ProgramPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).pp
}

func (c *planCache) put(key planKey, pp *ProgramPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*planEntry).pp = pp
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&planEntry{key: key, pp: pp})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*planEntry).key)
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
