package plan

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datalog"
	"repro/internal/graph"
	"repro/internal/magic"
)

// Randomized planned≡textual equivalence: for random Datalog(≠)
// programs over random databases, evaluation through the planner must
// be observationally identical to textual-order evaluation — same IDB
// relations, same per-tuple first stages, same round count — across
// naive/semi-naive, indexed/unindexed and parallel variants. Per-rule
// Derivations are explicitly NOT compared: subsumption pruning and
// minimization legitimately remove duplicate derivations. This harness
// runs under -race via `make verify`.

type genConfig struct {
	n     int
	idb   []string
	edb   []string
	arity map[string]int
}

var genVars = []string{"x", "y", "z", "w", "v"}

func randTerm(rng *rand.Rand, cfg genConfig, constProb float64) datalog.Term {
	if rng.Float64() < constProb {
		return datalog.C(rng.Intn(cfg.n))
	}
	return datalog.V(genVars[rng.Intn(len(genVars))])
}

func randAtom(rng *rand.Rand, cfg genConfig, pred string, constProb float64) datalog.Atom {
	args := make([]datalog.Term, cfg.arity[pred])
	for i := range args {
		args[i] = randTerm(rng, cfg, constProb)
	}
	return datalog.NewAtom(pred, args...)
}

// randProgram generates a valid random program, deliberately including
// the shapes the planner rewrites: duplicate-ish same-head rules (food
// for subsumption pruning), repeated body atoms (food for
// minimization), constraints, recursion and non-range-restricted heads.
func randProgram(rng *rand.Rand) (*datalog.Program, genConfig) {
	cfg := genConfig{
		n:     3 + rng.Intn(3),
		idb:   []string{"P", "Q"},
		edb:   []string{"E", "F"},
		arity: map[string]int{"E": 2, "F": 1},
	}
	for _, p := range cfg.idb {
		cfg.arity[p] = 1 + rng.Intn(2)
	}
	nRules := 2 + rng.Intn(4)
	for {
		prog := &datalog.Program{Goal: cfg.idb[0]}
		for len(prog.Rules) < nRules {
			head := cfg.idb[rng.Intn(len(cfg.idb))]
			if len(prog.Rules) < len(cfg.idb) {
				head = cfg.idb[len(prog.Rules)]
			}
			r := datalog.Rule{Head: randAtom(rng, cfg, head, 0.15)}
			nAtoms := 1 + rng.Intn(3)
			for i := 0; i < nAtoms; i++ {
				var pred string
				if rng.Float64() < 0.6 {
					pred = cfg.edb[rng.Intn(len(cfg.edb))]
				} else {
					pred = cfg.idb[rng.Intn(len(cfg.idb))]
				}
				a := randAtom(rng, cfg, pred, 0.1)
				r.Body = append(r.Body, datalog.BodyItem{Atom: &a})
				if rng.Intn(6) == 0 {
					// Duplicate the atom verbatim: redundant, minimizable.
					dup := a
					r.Body = append(r.Body, datalog.BodyItem{Atom: &dup})
				}
			}
			for i := rng.Intn(2); i > 0; i-- {
				c := datalog.Constraint{
					Left:  randTerm(rng, cfg, 0.25),
					Right: randTerm(rng, cfg, 0.25),
					Neq:   rng.Intn(2) == 0,
				}
				r.Body = append(r.Body, datalog.BodyItem{Constraint: &c})
			}
			prog.Rules = append(prog.Rules, r)
			if rng.Intn(5) == 0 && len(prog.Rules) >= len(cfg.idb) {
				// Clone a rule with renamed variables: an equivalent twin the
				// prune pass should collapse.
				prog.Rules = append(prog.Rules, renameVars(prog.Rules[len(prog.Rules)-1]))
			}
		}
		if datalog.Validate(prog) == nil {
			return prog, cfg
		}
	}
}

// renameVars returns an alpha-renamed copy of r (every variable gets a
// "r" suffix): semantically identical, textually distinct.
func renameVars(r datalog.Rule) datalog.Rule {
	ren := func(t datalog.Term) datalog.Term {
		if t.IsVar() {
			return datalog.V(t.Var + "r")
		}
		return t
	}
	renAtom := func(a datalog.Atom) datalog.Atom {
		args := make([]datalog.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = ren(t)
		}
		return datalog.NewAtom(a.Pred, args...)
	}
	out := datalog.Rule{Head: renAtom(r.Head)}
	for _, b := range r.Body {
		if b.Atom != nil {
			a := renAtom(*b.Atom)
			out.Body = append(out.Body, datalog.BodyItem{Atom: &a})
		} else if b.Constraint != nil {
			c := datalog.Constraint{Left: ren(b.Constraint.Left), Right: ren(b.Constraint.Right), Neq: b.Constraint.Neq}
			out.Body = append(out.Body, datalog.BodyItem{Constraint: &c})
		}
	}
	return out
}

func randDatabase(rng *rand.Rand, cfg genConfig) *datalog.Database {
	db := datalog.NewDatabase(cfg.n)
	for _, p := range cfg.edb {
		db.EnsureRelation(p, cfg.arity[p])
		for i := 0; i < rng.Intn(3*cfg.n); i++ {
			t := make([]int, cfg.arity[p])
			for j := range t {
				t[j] = rng.Intn(cfg.n)
			}
			db.AddFact(p, t...)
		}
	}
	return db
}

// mustAgree fails unless the two results are observationally identical:
// same IDB tuples, same first stages, same round count.
func mustAgree(t *testing.T, trial int, prog *datalog.Program, a, b *datalog.Result, what string) {
	t.Helper()
	if a.Rounds != b.Rounds {
		t.Fatalf("trial %d (%s): rounds %d vs %d\nprogram:\n%s", trial, what, a.Rounds, b.Rounds, prog)
	}
	for name, rel := range a.IDB {
		if rel.Size() != b.IDB[name].Size() {
			t.Fatalf("trial %d (%s): %s has %d vs %d tuples\nprogram:\n%s",
				trial, what, name, rel.Size(), b.IDB[name].Size(), prog)
		}
		for _, tup := range rel.Tuples() {
			if !b.IDB[name].Has(tup) {
				t.Fatalf("trial %d (%s): %s missing %v\nprogram:\n%s", trial, what, name, tup, prog)
			}
			sa, _ := a.StageOf(name, tup)
			sb, ok := b.StageOf(name, tup)
			if !ok || sa != sb {
				t.Fatalf("trial %d (%s): %s%v stage %d vs %d\nprogram:\n%s",
					trial, what, name, tup, sa, sb, prog)
			}
		}
	}
}

func TestQuickPlannedEquivalentToTextual(t *testing.T) {
	const trials = 220
	rng := rand.New(rand.NewSource(20260808))
	pl := New(Config{}) // shared planner: the cache path is exercised too
	for trial := 0; trial < trials; trial++ {
		prog, cfg := randProgram(rng)
		db := randDatabase(rng, cfg)
		base := datalog.Options{SemiNaive: trial%2 == 0, UseIndexes: trial%3 != 0}
		if trial%5 == 0 {
			base.Parallelism = 4
		}
		textual, err := datalog.Eval(prog, db.Clone(), base)
		if err != nil {
			t.Fatalf("trial %d: textual: %v\n%s", trial, err, prog)
		}
		planned, err := datalog.Eval(prog, db.Clone(), base.WithPlanner(pl))
		if err != nil {
			t.Fatalf("trial %d: planned: %v\n%s", trial, err, prog)
		}
		mustAgree(t, trial, prog, textual, planned, "random")
		if trial%10 == 0 {
			// Repeat through the warm plan cache: the cached plan must agree too.
			again, err := datalog.Eval(prog, db.Clone(), base.WithPlanner(pl))
			if err != nil {
				t.Fatalf("trial %d: cached replan: %v\n%s", trial, err, prog)
			}
			mustAgree(t, trial, prog, textual, again, "cached")
		}
	}
	if c := pl.Counters(); c.Built == 0 || c.CacheHits == 0 {
		t.Fatalf("harness did not exercise both build and hit paths: %+v", c)
	}
}

func TestQuickPlannedNamedPrograms(t *testing.T) {
	progs := []*datalog.Program{
		datalog.TransitiveClosureProgram(),
		datalog.AvoidingPathProgram(),
		datalog.SameGenerationProgram(),
		datalog.PathSystemsProgram(),
		datalog.QklPrograms(2, 0),
	}
	pl := New(Config{})
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		prog := progs[trial%len(progs)]
		db := datalog.FromGraph(graph.Random(7, 0.3, rng))
		textual, err := datalog.Eval(prog, db.Clone(), datalog.DefaultOptions)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		planned, err := datalog.Eval(prog, db.Clone(), datalog.DefaultOptions.WithPlanner(pl))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mustAgree(t, trial, prog, textual, planned, "named")
	}
}

// TestQuickPlannedMagicGoals: goal-directed evaluation with a planner in
// the engine options — the path the service's bound queries take — must
// return the same answers as unplanned goal-directed evaluation.
func TestQuickPlannedMagicGoals(t *testing.T) {
	pl := New(Config{})
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		prog, cfg := randProgram(rng)
		db := randDatabase(rng, cfg)
		pred := cfg.idb[rng.Intn(len(cfg.idb))]
		bindings := map[int]int{}
		for i := 0; i < cfg.arity[pred]; i++ {
			if rng.Intn(2) == 0 {
				bindings[i] = rng.Intn(cfg.n)
			}
		}
		g := datalog.NewGoal(pred, cfg.arity[pred], bindings)

		plain := magic.DefaultOptions()
		res1, err := magic.EvalGoal(context.Background(), prog, db.Clone(), g, plain)
		if err != nil {
			t.Fatalf("trial %d: unplanned: %v\n%s", trial, err, prog)
		}
		withPlan := magic.DefaultOptions()
		withPlan.Eval = withPlan.Eval.WithPlanner(pl)
		res2, err := magic.EvalGoal(context.Background(), prog, db.Clone(), g, withPlan)
		if err != nil {
			t.Fatalf("trial %d: planned: %v\n%s", trial, err, prog)
		}
		if !sameTuples(res1.Answers, res2.Answers) {
			t.Fatalf("trial %d: planned magic answers %v, unplanned %v\nprogram:\n%sgoal %s",
				trial, res2.Answers, res1.Answers, prog, g)
		}
	}
}

func sameTuples(a, b []datalog.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(t datalog.Tuple) string {
		s := ""
		for _, x := range t {
			s += string(rune('A'+x)) + ","
		}
		return s
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = key(a[i])
		kb[i] = key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
