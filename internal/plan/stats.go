// Package plan is the cost-based join planner: per-relation statistics
// (stats.go), a greedy/exhaustive join orderer over those statistics
// (planner.go), a containment-based pre-pass that drops subsumed rules
// and redundant body atoms (prune.go), and an LRU cache of finished
// plans keyed by (program hash, stats epoch, strategy) (cache.go).
//
// The planner plugs into evaluation through datalog.Options.Planner: it
// only permutes body atoms and prunes provably redundant rules, both of
// which preserve the least fixpoint, the per-tuple first stages and the
// round count — so every engine path (Eval, incremental maintenance,
// magic-set rewrites) can be planned without changing its answers. What
// changes is the probe order the compiled join loop executes, which is
// where adversarially ordered rule bodies pay cross-product blowups.
package plan

import (
	"hash/fnv"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/datalog"
)

// RelStats summarizes one relation for the cost model: total rows plus
// per-column distinct-value counts. 1/Distinct[i] is the estimated
// selectivity of fixing column i to a constant or an already-bound
// variable.
type RelStats struct {
	Name     string
	Arity    int
	Rows     int
	Distinct []int
}

// Catalog is an immutable snapshot of statistics for every relation of
// one database version. Immutability is the point: a catalog can be
// shared by concurrent planners, and Refresh produces the next version
// reusing the per-relation entries of untouched relations.
type Catalog struct {
	rels        map[string]*RelStats
	defaultRows int

	fpOnce sync.Once
	fp     uint64
}

// Collect scans every relation of db into a fresh catalog. Cost is one
// pass over every tuple; the service instead maintains its catalog
// incrementally with Refresh at each commit.
func Collect(db *datalog.Database) *Catalog {
	c := &Catalog{rels: map[string]*RelStats{}}
	if db != nil {
		for _, name := range db.Names() {
			c.rels[name] = collectRel(name, db.Relation(name))
		}
	}
	c.finish()
	return c
}

// Refresh returns the catalog for the next database version: the named
// relations are rescanned, everything else is shared with the receiver.
func (c *Catalog) Refresh(db *datalog.Database, names ...string) *Catalog {
	next := &Catalog{rels: make(map[string]*RelStats, len(c.rels)+len(names))}
	for k, v := range c.rels {
		next.rels[k] = v
	}
	for _, name := range names {
		if r := db.Relation(name); r != nil {
			next.rels[name] = collectRel(name, r)
		} else {
			delete(next.rels, name)
		}
	}
	next.finish()
	return next
}

func collectRel(name string, r *datalog.Relation) *RelStats {
	st := &RelStats{Name: name, Arity: r.Arity, Rows: r.Size(), Distinct: make([]int, r.Arity)}
	seen := make([]map[int]struct{}, r.Arity)
	for i := range seen {
		seen[i] = make(map[int]struct{})
	}
	for _, t := range r.TuplesUnordered() {
		for i, x := range t {
			seen[i][x] = struct{}{}
		}
	}
	for i := range seen {
		st.Distinct[i] = len(seen[i])
	}
	return st
}

// finish derives the catalog-wide fallback row count used for predicates
// without statistics (IDB predicates mid-derivation, unknown EDBs): the
// largest known relation, floored at 1 so selectivities stay finite.
func (c *Catalog) finish() {
	c.defaultRows = 1
	for _, st := range c.rels {
		if st.Rows > c.defaultRows {
			c.defaultRows = st.Rows
		}
	}
}

// Rel returns the statistics for one relation.
func (c *Catalog) Rel(name string) (*RelStats, bool) {
	st, ok := c.rels[name]
	return st, ok
}

// DefaultRows is the row estimate for predicates the catalog knows
// nothing about.
func (c *Catalog) DefaultRows() int { return c.defaultRows }

// Len is the number of relations with statistics.
func (c *Catalog) Len() int { return len(c.rels) }

// Names returns the cataloged relation names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.rels))
	for name := range c.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// bucket maps a count to its log2 bucket (0, 1, 2, 4, 8, ... share a
// bucket with their neighbors): the fingerprint granularity.
func bucket(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(bits.Len(uint(n)))
}

// Fingerprint is the catalog's stats epoch: an FNV-64a hash over every
// relation's name, log2-bucketed row count and log2-bucketed per-column
// distinct counts. Bucketing makes the epoch — and therefore the plan
// cache — stable across commits that change cardinalities by less than
// a factor of two: such changes cannot move a cost estimate enough to
// warrant replanning, so cached plans keep hitting.
func (c *Catalog) Fingerprint() uint64 {
	c.fpOnce.Do(func() {
		h := fnv.New64a()
		var buf [8]byte
		writeU64 := func(v uint64) {
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
		for _, name := range c.Names() {
			h.Write([]byte(name))
			h.Write([]byte{0})
			st := c.rels[name]
			writeU64(bucket(st.Rows))
			for _, d := range st.Distinct {
				writeU64(bucket(d))
			}
		}
		c.fp = h.Sum64()
	})
	return c.fp
}
