package plan

import "repro/internal/datalog"

// Containment pre-pass: before any ordering happens, fold redundant
// atoms out of conjunctive-query rule bodies (CQ minimization) and drop
// rules another same-head rule provably subsumes (Chandra–Merlin
// containment, internal/datalog/containment.go).
//
// Both transformations preserve the per-round immediate consequence
// operator, not just the fixpoint: an equivalent minimized body derives
// exactly the same head tuples from any instance, and a subsumed rule's
// per-instance derivations are a subset of its subsumer's — so stages
// and round counts survive, which is what lets the planned≡textual
// equivalence tests compare them strictly.
//
// Rules that are not conjunctive queries — bodies with ≠ constraints,
// recursion through the head, or constraint-only bodies like the magic
// rewrite's seed rules — are never touched: CQ containment is unsound
// for them (the canonical-database method breaks with inequalities),
// so they pass through verbatim.

// pruneRules returns the surviving rules in original order (minimized
// where possible), the list of dropped rules, and how many redundant
// body atoms minimization removed.
func pruneRules(rules []datalog.Rule, cfg Config) ([]datalog.Rule, []PrunedRule, int) {
	if len(rules) < 1 || len(rules) > cfg.MaxPruneRules {
		return rules, nil, 0
	}
	out := make([]datalog.Rule, len(rules))
	copy(out, rules)
	cqs := make([]datalog.CQ, len(rules))
	eligible := make([]bool, len(rules))
	atomsDropped := 0
	for i, r := range rules {
		cq, err := datalog.NewCQ(r)
		if err != nil {
			continue
		}
		if len(r.Atoms()) <= cfg.MaxPruneAtoms {
			if m, err := cq.Minimize(); err == nil {
				if d := len(cq.Rule.Atoms()) - len(m.Rule.Atoms()); d > 0 {
					atomsDropped += d
					cq = m
					out[i] = m.Rule
				}
			}
		}
		cqs[i] = cq
		eligible[i] = true
	}

	drop := make([]bool, len(rules))
	var pruned []PrunedRule
	for i := range rules {
		if !eligible[i] || drop[i] {
			continue
		}
		for j := range rules {
			if j == i || !eligible[j] || drop[j] {
				continue
			}
			if cqs[i].Rule.Head.Pred != cqs[j].Rule.Head.Pred ||
				len(cqs[i].Rule.Head.Args) != len(cqs[j].Rule.Head.Args) {
				continue
			}
			contained, err := cqs[i].ContainedIn(cqs[j])
			if err != nil || !contained {
				continue
			}
			// Equivalent pair: keep the textually earlier rule. i survives
			// here; the later outer iteration at j drops j against i.
			if back, err := cqs[j].ContainedIn(cqs[i]); err == nil && back && i < j {
				continue
			}
			drop[i] = true
			pruned = append(pruned, PrunedRule{Rule: out[i].String(), By: out[j].String()})
			break
		}
	}
	if pruned == nil && atomsDropped == 0 {
		return out, nil, 0
	}
	kept := out[:0]
	for i, r := range out {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	return kept, pruned, atomsDropped
}
