package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/datalog"
)

// Config tunes the planner. The zero value is usable; New fills in the
// documented defaults.
type Config struct {
	// MaxExhaustive is the body size up to which every atom permutation
	// is costed (m! orders, so 6 means at most 720 candidates); larger
	// bodies fall back to the greedy orderer. Default 6.
	MaxExhaustive int
	// DisablePrune turns the containment pre-pass off (subsumed-rule and
	// redundant-atom removal); ordering still runs.
	DisablePrune bool
	// MaxPruneRules caps the program size the containment pre-pass is
	// attempted on — the pairwise check is quadratic. Default 64.
	MaxPruneRules int
	// MaxPruneAtoms caps the body size eligible for CQ minimization.
	// Default 6.
	MaxPruneAtoms int
	// CacheEntries bounds the plan cache. Default 128.
	CacheEntries int
	// Stats, when set, supplies the catalog for a database instead of a
	// full Collect scan — the service wires the versioned store's
	// incrementally-maintained catalog in here, which is what makes
	// repeated plan lookups ~free.
	Stats func(db *datalog.Database) *Catalog
}

// Planner orders rule bodies by estimated cost and caches the results.
// It implements datalog.Planner; one instance is safe for concurrent
// use and is meant to be shared so the cache actually gets hits.
type Planner struct {
	cfg Config

	built       atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	rulesPruned atomic.Int64
	atomsPruned atomic.Int64

	cache *planCache
}

// New returns a planner with defaults applied.
func New(cfg Config) *Planner {
	if cfg.MaxExhaustive <= 0 {
		cfg.MaxExhaustive = 6
	}
	if cfg.MaxPruneRules <= 0 {
		cfg.MaxPruneRules = 64
	}
	if cfg.MaxPruneAtoms <= 0 {
		cfg.MaxPruneAtoms = 6
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	return &Planner{cfg: cfg, cache: newPlanCache(cfg.CacheEntries)}
}

// Counters is a snapshot of the planner's lifetime activity.
type Counters struct {
	Built        int64 // plans constructed (cache misses that completed)
	CacheHits    int64
	CacheMisses  int64
	RulesPruned  int64 // subsumed rules dropped across all builds
	AtomsPruned  int64 // redundant body atoms removed across all builds
	CacheEntries int64 // current cache population
}

// Counters returns the current totals.
func (pl *Planner) Counters() Counters {
	return Counters{
		Built:        pl.built.Load(),
		CacheHits:    pl.hits.Load(),
		CacheMisses:  pl.misses.Load(),
		RulesPruned:  pl.rulesPruned.Load(),
		AtomsPruned:  pl.atomsPruned.Load(),
		CacheEntries: int64(pl.cache.len()),
	}
}

// Strategy names the planning configuration; it is part of the cache
// key, so two planners with different knobs never share plans.
func (pl *Planner) Strategy() string {
	return fmt.Sprintf("greedy+exh%d,prune=%t", pl.cfg.MaxExhaustive, !pl.cfg.DisablePrune)
}

// PlanRules implements datalog.Planner: every evaluation entry point
// passes through here. The heavy lifting is one PlanProgram call, which
// is a cache hit for every repeat of (program, stats epoch).
func (pl *Planner) PlanRules(p *datalog.Program, db *datalog.Database) ([]datalog.Rule, error) {
	pp, _ := pl.PlanProgram(p, pl.CatalogFor(db))
	return pp.PlannedRules(), nil
}

// boundPlanner is the planner bound to one statistics catalog: the
// datalog.Planner the service installs per evaluation, so each snapshot
// is planned under its own version's statistics rather than a global
// guess.
type boundPlanner struct {
	pl  *Planner
	cat *Catalog
}

func (b boundPlanner) PlanRules(p *datalog.Program, _ *datalog.Database) ([]datalog.Rule, error) {
	pp, _ := b.pl.PlanProgram(p, b.cat)
	return pp.PlannedRules(), nil
}

// With returns a datalog.Planner that plans every program under the
// given catalog, ignoring the database handed to PlanRules.
func (pl *Planner) With(cat *Catalog) datalog.Planner { return boundPlanner{pl: pl, cat: cat} }

// CatalogFor resolves the statistics source for a database: the
// configured Stats hook, or a full Collect scan.
func (pl *Planner) CatalogFor(db *datalog.Database) *Catalog {
	if pl.cfg.Stats != nil {
		if c := pl.cfg.Stats(db); c != nil {
			return c
		}
	}
	return Collect(db)
}

// HashProgram is the program component of the plan-cache key: the
// SHA-256 of the printed program and goal. The service uses the same
// construction for its result cache, so one program registered there
// and queried repeatedly maps to one cache line here.
func HashProgram(p *datalog.Program) string {
	h := sha256.Sum256([]byte(p.String() + "\x00" + p.Goal))
	return hex.EncodeToString(h[:])
}

// PlanProgram returns the plan for p under the catalog's statistics,
// consulting the cache first; the second result reports a cache hit.
func (pl *Planner) PlanProgram(p *datalog.Program, cat *Catalog) (*ProgramPlan, bool) {
	key := planKey{hash: HashProgram(p), epoch: cat.Fingerprint(), strategy: pl.Strategy()}
	if pp := pl.cache.get(key); pp != nil {
		pl.hits.Add(1)
		return pp, true
	}
	pl.misses.Add(1)
	pp := pl.build(p, cat)
	pl.built.Add(1)
	pl.cache.put(key, pp)
	return pp, false
}

// build constructs the plan: containment pre-pass, then per-rule join
// ordering.
func (pl *Planner) build(p *datalog.Program, cat *Catalog) *ProgramPlan {
	rules := p.Rules
	pp := &ProgramPlan{Goal: p.Goal, Epoch: cat.Fingerprint(), Strategy: pl.Strategy()}
	if !pl.cfg.DisablePrune {
		var dropped int
		rules, pp.Pruned, dropped = pruneRules(rules, pl.cfg)
		pl.rulesPruned.Add(int64(len(pp.Pruned)))
		pl.atomsPruned.Add(int64(dropped))
	}
	pp.Rules = make([]RulePlan, len(rules))
	planned := make([]datalog.Rule, len(rules))
	for i, r := range rules {
		pp.Rules[i] = pl.planRule(r, cat)
		planned[i] = pp.Rules[i].Rule
	}
	pp.prog = &datalog.Program{Rules: planned, Goal: p.Goal}
	return pp
}

// AtomStep is one join step of a planned rule body.
type AtomStep struct {
	Atom      string  // the atom as executed at this position
	OrigIndex int     // its index in the source body (after minimization)
	Probe     uint64  // probe mask the compiled join loop will use here
	EstFanout float64 // estimated matching tuples per probe
	EstRows   float64 // estimated cumulative intermediate rows after this step
}

// RulePlan is the chosen execution order for one rule.
type RulePlan struct {
	Original   string // source rule (possibly already minimized)
	Planned    string // rule as it will execute
	Rule       datalog.Rule
	Steps      []AtomStep
	EstRows    float64 // estimated rows out of the final join step
	EstCost    float64 // Σ estimated intermediate cardinalities — the objective
	Exhaustive bool    // all permutations costed (body ≤ MaxExhaustive)
	Reordered  bool    // chosen order differs from textual order
}

// PrunedRule records a rule the containment pre-pass removed.
type PrunedRule struct {
	Rule string // the dropped rule
	By   string // the surviving rule that contains it
}

// ProgramPlan is a fully planned program: what the cache stores and
// what -explain renders.
type ProgramPlan struct {
	Goal     string
	Epoch    uint64
	Strategy string
	Rules    []RulePlan
	Pruned   []PrunedRule

	prog *datalog.Program
}

// PlannedRules returns the planned rule list (treat as read-only — the
// slice backs every evaluation that hits this cache entry).
func (pp *ProgramPlan) PlannedRules() []datalog.Rule { return pp.prog.Rules }

// EstPredRows returns the estimated number of tuples the plan expects pred
// to hold at fixpoint: the sum of final-step row estimates over the rules
// with that head (0 when no rule derives it — e.g. it was pruned). The
// streaming executor uses this to pick stream vs. materialize per join
// step.
func (pp *ProgramPlan) EstPredRows(pred string) float64 {
	var sum float64
	for i := range pp.Rules {
		if pp.Rules[i].Rule.Head.Pred == pred {
			sum += pp.Rules[i].EstRows
		}
	}
	return sum
}

// Program returns the planned program (read-only, shared).
func (pp *ProgramPlan) Program() *datalog.Program { return pp.prog }

// minFanout floors per-step estimates so chains of selective joins keep
// a total order instead of collapsing to zero.
const minFanout = 1e-4

// fanout estimates how many tuples of atom a match one probe, given the
// set of already-bound variables: rows × Π 1/distinct(col) over the
// bound positions. Predicates without statistics (IDB mid-derivation)
// get the catalog's default row count with every column assumed fully
// distinct — deliberately pessimistic on rows, optimistic on
// selectivity, which keeps small known EDB relations attractive as
// join anchors.
func fanout(a datalog.Atom, bound map[string]bool, cat *Catalog) float64 {
	st, known := cat.Rel(a.Pred)
	rows := cat.DefaultRows()
	if known {
		rows = st.Rows
	}
	f := float64(rows)
	for i, t := range a.Args {
		if t.IsVar() && !bound[t.Var] {
			continue
		}
		d := rows
		if known && st.Distinct[i] > 0 {
			d = st.Distinct[i]
		}
		if d < 1 {
			d = 1
		}
		f /= float64(d)
	}
	if f < minFanout {
		f = minFanout
	}
	return f
}

// boundPositions counts argument positions of a that are constants or
// already-bound variables — the greedy tie-breaker (more bound
// positions means a tighter probe mask at equal estimated fanout).
func boundPositions(a datalog.Atom, bound map[string]bool) int {
	n := 0
	for _, t := range a.Args {
		if !t.IsVar() || bound[t.Var] {
			n++
		}
	}
	return n
}

// orderCost evaluates the objective for one atom order: the sum of
// estimated intermediate cardinalities after each join step.
func orderCost(atoms []datalog.Atom, order []int, cat *Catalog) float64 {
	bound := map[string]bool{}
	cur := 1.0
	cost := 0.0
	for _, i := range order {
		cur *= fanout(atoms[i], bound, cat)
		cost += cur
		for _, t := range atoms[i].Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	return cost
}

// greedyOrder picks, at each step, the remaining atom with the smallest
// estimated fanout under the current bindings; ties fall to the atom
// with more bound positions, then to the earlier textual position — so
// the result is deterministic and preserves textual order when the
// statistics see no difference.
func greedyOrder(atoms []datalog.Atom, cat *Catalog) []int {
	order := make([]int, 0, len(atoms))
	used := make([]bool, len(atoms))
	bound := map[string]bool{}
	for len(order) < len(atoms) {
		best := -1
		bestF := 0.0
		bestBound := -1
		for i := range atoms {
			if used[i] {
				continue
			}
			f := fanout(atoms[i], bound, cat)
			nb := boundPositions(atoms[i], bound)
			if best < 0 || f < bestF || (f == bestF && nb > bestBound) {
				best, bestF, bestBound = i, f, nb
			}
		}
		order = append(order, best)
		used[best] = true
		for _, t := range atoms[best].Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	return order
}

// exhaustiveOrder costs every permutation (generated in lexicographic
// order so equal-cost candidates resolve to the most textual one) and
// returns the cheapest.
func exhaustiveOrder(atoms []datalog.Atom, cat *Catalog) []int {
	n := len(atoms)
	best := make([]int, n)
	bestCost := math.Inf(1)
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(perm) == n {
			if c := orderCost(atoms, perm, cat); c < bestCost {
				bestCost = c
				copy(best, perm)
			}
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			rec()
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec()
	return best
}

// planRule orders one rule's body.
func (pl *Planner) planRule(r datalog.Rule, cat *Catalog) RulePlan {
	atoms := r.Atoms()
	var order []int
	exhaustive := false
	switch {
	case len(atoms) <= 1:
		order = make([]int, len(atoms))
		for i := range order {
			order[i] = i
		}
	case len(atoms) <= pl.cfg.MaxExhaustive:
		order = exhaustiveOrder(atoms, cat)
		exhaustive = true
	default:
		order = greedyOrder(atoms, cat)
	}
	reordered := !sort.IntsAreSorted(order)
	planned := r
	if reordered {
		planned = reorderRule(r, order)
	}
	rp := RulePlan{
		Original:   r.String(),
		Planned:    planned.String(),
		Rule:       planned,
		EstCost:    orderCost(atoms, order, cat),
		Exhaustive: exhaustive,
		Reordered:  reordered,
	}
	masks := datalog.ProbeMasks(planned)
	bound := map[string]bool{}
	cur := 1.0
	for step, i := range order {
		f := fanout(atoms[i], bound, cat)
		cur *= f
		rp.Steps = append(rp.Steps, AtomStep{
			Atom:      atoms[i].String(),
			OrigIndex: i,
			Probe:     masks[step],
			EstFanout: f,
			EstRows:   cur,
		})
		for _, t := range atoms[i].Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	rp.EstRows = cur
	return rp
}

// reorderRule rebuilds the rule with its atoms in the given order;
// constraints keep their original relative order after the atoms (the
// compiler schedules them by variable bind level, not body position,
// so placement is cosmetic).
func reorderRule(r datalog.Rule, order []int) datalog.Rule {
	atoms := r.Atoms()
	body := make([]datalog.BodyItem, 0, len(r.Body))
	for _, i := range order {
		a := atoms[i]
		body = append(body, datalog.BodyItem{Atom: &a})
	}
	for _, c := range r.Constraints() {
		cc := c
		body = append(body, datalog.BodyItem{Constraint: &cc})
	}
	return datalog.Rule{Head: r.Head, Body: body}
}

// RuleError compares a rule plan's estimate with what evaluation
// actually derived; AbsLog2 is |log₂(est/actual)| with +1 smoothing —
// the estimation-error unit exported to the metrics histogram.
type RuleError struct {
	Rule    string
	Est     float64
	Actual  float64
	AbsLog2 float64
}

// EstimationErrors pairs a program plan with the evaluation stats it
// produced. The actual is the rule's total derived rows (duplicates
// included — the quantity the cost objective estimates per firing,
// summed over the fixpoint's firings); index alignment with the stats
// is guaranteed because the evaluator compiled exactly the planned
// rules.
func EstimationErrors(pp *ProgramPlan, st *datalog.EvalStats) []RuleError {
	if pp == nil || st == nil || len(pp.Rules) != len(st.Rules) {
		return nil
	}
	out := make([]RuleError, len(pp.Rules))
	for i := range pp.Rules {
		est := pp.Rules[i].EstRows
		actual := float64(st.Rules[i].Derived)
		out[i] = RuleError{
			Rule:    pp.Rules[i].Planned,
			Est:     est,
			Actual:  actual,
			AbsLog2: math.Abs(math.Log2((est + 1) / (actual + 1))),
		}
	}
	return out
}
