package plan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/graph"
)

// adversarialDB builds the E27 shape: a dense binary E and a tiny R, so
// textual order E,E,R pays the E⋈E blowup while the cheap order starts
// at R.
func adversarialDB(t testing.TB, n int) *datalog.Database {
	rng := rand.New(rand.NewSource(7))
	db := datalog.FromGraph(graph.Random(n, 0.2, rng))
	db.EnsureRelation("R", 2)
	db.AddFact("R", 1, 0)
	db.AddFact("R", 2, 0)
	return db
}

func mustParse(t testing.TB, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCatalogCollect(t *testing.T) {
	db := datalog.NewDatabase(10)
	db.AddFact("E", 0, 1)
	db.AddFact("E", 0, 2)
	db.AddFact("E", 1, 2)
	cat := Collect(db)
	st, ok := cat.Rel("E")
	if !ok {
		t.Fatal("E not cataloged")
	}
	if st.Rows != 3 || st.Distinct[0] != 2 || st.Distinct[1] != 2 {
		t.Fatalf("bad stats: %+v", st)
	}
	if cat.DefaultRows() != 3 {
		t.Fatalf("default rows = %d, want 3", cat.DefaultRows())
	}
}

func TestCatalogRefreshSharesUntouched(t *testing.T) {
	db := datalog.NewDatabase(10)
	db.AddFact("E", 0, 1)
	db.AddFact("F", 3)
	cat := Collect(db)
	db.AddFact("E", 1, 2)
	next := cat.Refresh(db, "E")
	stE, _ := next.Rel("E")
	if stE.Rows != 2 {
		t.Fatalf("E not rescanned: %+v", stE)
	}
	oldF, _ := cat.Rel("F")
	newF, _ := next.Rel("F")
	if oldF != newF {
		t.Fatal("untouched relation was rescanned instead of shared")
	}
}

func TestFingerprintBucketsSmallChanges(t *testing.T) {
	db := datalog.NewDatabase(64)
	for i := 0; i < 16; i++ {
		db.AddFact("E", i, i+1)
	}
	cat := Collect(db)
	// 16 → 17 rows stays in the same log2 bucket (old distincts too).
	db.AddFact("E", 20, 40)
	small := cat.Refresh(db, "E")
	if cat.Fingerprint() != small.Fingerprint() {
		t.Fatal("sub-2x growth should keep the stats epoch")
	}
	// Quadrupling the relation crosses buckets.
	for i := 0; i < 60; i++ {
		db.AddFact("E", i%60, (i*7)%60)
	}
	big := cat.Refresh(db, "E")
	if cat.Fingerprint() == big.Fingerprint() {
		t.Fatal("4x growth must change the stats epoch")
	}
}

func TestPlannerAnchorsOnSmallRelation(t *testing.T) {
	p := mustParse(t, "P(x,w) :- E(x,y), E(y,z), R(z,w).")
	db := adversarialDB(t, 40)
	pl := New(Config{})
	pp, hit := pl.PlanProgram(p, Collect(db))
	if hit {
		t.Fatal("first plan cannot be a cache hit")
	}
	rp := pp.Rules[0]
	if !rp.Reordered || !rp.Exhaustive {
		t.Fatalf("expected an exhaustive reorder: %+v", rp)
	}
	if !strings.HasPrefix(rp.Steps[0].Atom, "R(") {
		t.Fatalf("plan should start at the 2-row relation, got %s (plan %s)", rp.Steps[0].Atom, rp.Planned)
	}
	// Every later step must probe at least one bound column.
	for _, step := range rp.Steps[1:] {
		if step.Probe == 0 {
			t.Fatalf("step %s has an empty probe mask: %s", step.Atom, rp.Planned)
		}
	}
}

func TestPlannerKeepsTextualOrderOnTies(t *testing.T) {
	// Transitive closure: E(x,y) and the recursive S probe tie or favor
	// textual order; the planner must not churn it.
	p := datalog.TransitiveClosureProgram()
	db := datalog.FromGraph(graph.Random(12, 0.3, rand.New(rand.NewSource(3))))
	pl := New(Config{})
	pp, _ := pl.PlanProgram(p, Collect(db))
	for _, rp := range pp.Rules {
		if rp.Reordered {
			t.Fatalf("transitive closure should keep textual order: %s -> %s", rp.Original, rp.Planned)
		}
	}
}

func TestPlanCacheHitsAndEpochs(t *testing.T) {
	p := mustParse(t, "P(x,w) :- E(x,y), E(y,z), R(z,w).")
	db := adversarialDB(t, 30)
	pl := New(Config{})
	cat := Collect(db)
	pp1, hit := pl.PlanProgram(p, cat)
	if hit {
		t.Fatal("cold lookup hit")
	}
	pp2, hit := pl.PlanProgram(p, cat)
	if !hit || pp1 != pp2 {
		t.Fatal("warm lookup must return the cached plan")
	}
	// Reparsing the program must hit too: the key is content-addressed.
	pp3, hit := pl.PlanProgram(mustParse(t, p.String()), cat)
	if !hit || pp3 != pp1 {
		t.Fatal("content-identical program missed the cache")
	}
	c := pl.Counters()
	if c.Built != 1 || c.CacheHits != 2 || c.CacheMisses != 1 {
		t.Fatalf("counters: %+v", c)
	}
	// A big data change moves the epoch: same program replans.
	for i := 0; i < 29; i++ {
		for j := 0; j < 20; j++ {
			db.AddFact("R", i, j)
		}
	}
	if _, hit := pl.PlanProgram(p, cat.Refresh(db, "R")); hit {
		t.Fatal("stale-epoch plan served after the stats moved")
	}
}

func TestPruneSubsumedRule(t *testing.T) {
	// The 2-step rule is contained in the 1-step rule: it must be dropped.
	p := mustParse(t, "P(x) :- E(x,y).\nP(x) :- E(x,y), E(y,z).")
	pl := New(Config{})
	pp, _ := pl.PlanProgram(p, Collect(datalog.NewDatabase(4)))
	if len(pp.Rules) != 1 || len(pp.Pruned) != 1 {
		t.Fatalf("want 1 kept + 1 pruned, got %d + %d", len(pp.Rules), len(pp.Pruned))
	}
	if !strings.Contains(pp.Pruned[0].Rule, "E(y,z)") {
		t.Fatalf("dropped the wrong rule: %+v", pp.Pruned[0])
	}
}

func TestPruneKeepsEarlierOfEquivalentPair(t *testing.T) {
	p := mustParse(t, "P(x) :- E(x,y).\nP(u) :- E(u,v).")
	pl := New(Config{})
	pp, _ := pl.PlanProgram(p, Collect(datalog.NewDatabase(4)))
	if len(pp.Rules) != 1 {
		t.Fatalf("equivalent pair should collapse to one rule, got %d", len(pp.Rules))
	}
	if pp.Rules[0].Original != "P(x) :- E(x,y)." {
		t.Fatalf("kept the later twin: %s", pp.Rules[0].Original)
	}
}

func TestPruneMinimizesRedundantAtoms(t *testing.T) {
	p := mustParse(t, "P(x) :- E(x,y), E(x,z).")
	pl := New(Config{})
	pp, _ := pl.PlanProgram(p, Collect(datalog.NewDatabase(4)))
	if got := len(pp.Rules[0].Steps); got != 1 {
		t.Fatalf("redundant atom survived: %s", pp.Rules[0].Planned)
	}
	c := pl.Counters()
	if c.AtomsPruned != 1 {
		t.Fatalf("AtomsPruned = %d, want 1", c.AtomsPruned)
	}
}

func TestPruneLeavesNonCQRulesAlone(t *testing.T) {
	// Inequality rules, recursive rules and constraint-only seed rules
	// (the magic rewrite's shape) are outside the CQ fragment: the prune
	// pass must pass them through even when they look redundant.
	p := mustParse(t,
		"P(x) :- E(x,y), x != y.\nP(x) :- E(x,y).\nS(x,y) :- E(x,y).\nS(x,y) :- E(x,z), S(z,y).")
	seed := datalog.NewRule(
		datalog.NewAtom("P", datalog.C(1)),
		datalog.Eq(datalog.C(1), datalog.C(1)),
	)
	p.Rules = append([]datalog.Rule{seed}, p.Rules...)
	pl := New(Config{})
	pp, _ := pl.PlanProgram(p, Collect(datalog.NewDatabase(4)))
	if len(pp.Rules) != 5 || len(pp.Pruned) != 0 {
		t.Fatalf("non-CQ rules must survive: kept %d pruned %d", len(pp.Rules), len(pp.Pruned))
	}
}

func TestPlanRulesThroughEvalOptions(t *testing.T) {
	// End to end through the engine hook: planned evaluation returns the
	// same fixpoint and the plan cache absorbs the repeat.
	p := mustParse(t, "P(x,w) :- E(x,y), E(y,z), R(z,w).")
	db := adversarialDB(t, 25)
	pl := New(Config{})
	opts := datalog.DefaultOptions.WithPlanner(pl)
	planned, err := datalog.Eval(p, db.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	textual, err := datalog.Eval(p, db.Clone(), datalog.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if planned.IDB["P"].Size() != textual.IDB["P"].Size() {
		t.Fatalf("planned %d tuples, textual %d", planned.IDB["P"].Size(), textual.IDB["P"].Size())
	}
	if _, err := datalog.Eval(p, db.Clone(), opts); err != nil {
		t.Fatal(err)
	}
	if c := pl.Counters(); c.CacheHits < 1 {
		t.Fatalf("second eval should hit the plan cache: %+v", c)
	}
}

func TestEstimationErrors(t *testing.T) {
	p := mustParse(t, "P(x,w) :- E(x,y), E(y,z), R(z,w).")
	db := adversarialDB(t, 25)
	pl := New(Config{})
	pp, _ := pl.PlanProgram(p, Collect(db))
	res, err := datalog.Eval(pp.Program(), db.Clone(), datalog.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	errs := EstimationErrors(pp, res.Stats)
	if len(errs) != 1 {
		t.Fatalf("want 1 rule error, got %d", len(errs))
	}
	if errs[0].AbsLog2 < 0 || errs[0].Actual != float64(res.Stats.Rules[0].Derived) {
		t.Fatalf("bad error record: %+v", errs[0])
	}
}

func TestProbeMasksMatchPlanSteps(t *testing.T) {
	p := mustParse(t, "P(x,w) :- E(x,y), E(y,z), R(z,w).")
	db := adversarialDB(t, 20)
	pl := New(Config{})
	pp, _ := pl.PlanProgram(p, Collect(db))
	rp := pp.Rules[0]
	masks := datalog.ProbeMasks(rp.Rule)
	for i, step := range rp.Steps {
		if masks[i] != step.Probe {
			t.Fatalf("step %d probe %b, engine mask %b", i, step.Probe, masks[i])
		}
	}
}
