package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/homeo"
)

func TestRunTransitiveClosure(t *testing.T) {
	p, err := ParseProgram(`
		S(x,y) :- E(x,y).
		S(x,y) :- E(x,z), S(z,y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ParseDatabase("universe 4\nE(0,1).\nE(1,2).\nE(2,3).")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Goal(p).Size() != 6 {
		t.Fatalf("|S| = %d, want 6", res.Goal(p).Size())
	}
	out := FormatRelation("S", res.Goal(p))
	if !strings.Contains(out, "(0,3)") {
		t.Fatalf("formatted output missing tuple:\n%s", out)
	}
}

func TestPreceqAndWinner(t *testing.T) {
	a := GraphStructure(graph.DirectedPath(3), nil, nil)
	b := GraphStructure(graph.DirectedPath(5), nil, nil)
	ok, err := Preceq(2, a, b)
	if err != nil || !ok {
		t.Fatalf("short ⪯² long expected: %v %v", ok, err)
	}
	w, err := GameWinner(2, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if w != "Player I" {
		t.Fatalf("winner = %s", w)
	}
}

func TestWitnessValidation(t *testing.T) {
	// Example 4.4 as a toy witness: query "has a path of length 4".
	a := GraphStructure(graph.DirectedPath(5), nil, nil)
	b := GraphStructure(graph.DirectedPath(3), nil, nil)
	query := func(s *Structure) bool {
		g := graphOf(s)
		return g.LongestPathLen() >= 4
	}
	w, err := CheckInexpressibilityWitness(2, a, b, query)
	if err != nil {
		t.Fatal(err)
	}
	// A ⪯² B fails here (long into short), so the witness is invalid —
	// exactly what Valid must report.
	if w.Valid() {
		t.Fatal("invalid witness accepted")
	}
	// Swap to the valid direction with a query separating them the other
	// way: "has at most 3 nodes" holds on B... A must satisfy the query:
	// use query "has a path of length 2" with A=short, B=long.
	a2 := GraphStructure(graph.DirectedPath(3), nil, nil)
	b2 := GraphStructure(graph.DirectedPath(5), nil, nil)
	q2 := func(s *Structure) bool { return graphOf(s).LongestPathLen() >= 2 }
	w2, err := CheckInexpressibilityWitness(2, a2, b2, q2)
	if err != nil {
		t.Fatal(err)
	}
	// Here B also satisfies q2, so again invalid — but ⪯² holds.
	if !w2.IIWins || w2.Valid() {
		t.Fatalf("unexpected witness state: %+v", w2)
	}
}

func graphOf(s *Structure) *graph.Graph {
	g := graph.New(s.N)
	for _, tup := range s.Rel("E").Tuples() {
		g.AddEdge(tup[0], tup[1])
	}
	return g
}

func TestClassifyPattern(t *testing.T) {
	c := ClassifyPattern(homeo.Star(3, false))
	if !c.InC || c.Complexity != "PTIME" || c.Root != 0 || !c.RootIsTail {
		t.Fatalf("star misclassified: %+v", c)
	}
	c = ClassifyPattern(homeo.H1())
	if c.InC || c.Complexity != "NP-complete" {
		t.Fatalf("H1 misclassified: %+v", c)
	}
	if !strings.Contains(c.Datalog, "Theorem 6.7") {
		t.Fatalf("H1 verdict: %s", c.Datalog)
	}
}

func TestSolveHomeomorphismDispatch(t *testing.T) {
	g := graph.Grid(3, 3)
	inst, err := homeo.NewInstance(homeo.H1(), g, []int{0, 2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	got, alg, err := SolveHomeomorphism(homeo.H1(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(alg, "Theorem 6.2") {
		t.Fatalf("grid is acyclic; alg = %s", alg)
	}
	if got != homeo.H1().BruteForce(inst) {
		t.Fatal("dispatch disagrees with brute force")
	}
}

func TestGenuineWitnessValid(t *testing.T) {
	// The real thing at k=1: the Theorem 6.6 pair is a VALID witness for
	// the two-disjoint-paths query, certified end to end through the core
	// API (exact game solver + brute-force query evaluation).
	lb := homeo.NewLowerBound(1)
	a, b := lb.Structures()
	query := func(s *Structure) bool {
		g := graphOf(s)
		return g.TwoDisjointPaths(s.Constant("s1"), s.Constant("s2"), s.Constant("s3"), s.Constant("s4"))
	}
	w := Witness{K: 1, A: a, B: b, ASatisfies: query(a), BSatisfies: query(b)}
	ok, err := Preceq(1, a, b)
	if err != nil {
		t.Skipf("instance too large for the exact solver: %v", err)
	}
	w.IIWins = ok
	if !w.Valid() {
		t.Fatalf("the Theorem 6.6 witness must validate: %+v",
			struct{ A, B, II bool }{w.ASatisfies, w.BSatisfies, w.IIWins})
	}
}

func TestStageFormulaErrors(t *testing.T) {
	if _, _, err := StageFormula(&Program{Goal: "S"}, 1); err == nil {
		t.Fatal("empty program must error")
	}
}

func TestStageFormula(t *testing.T) {
	p, err := ParseProgram("S(x,y) :- E(x,y).\nS(x,y) :- E(x,z), S(z,y).")
	if err != nil {
		t.Fatal(err)
	}
	f, heads, err := StageFormula(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(heads) != 2 {
		t.Fatalf("head vars = %v", heads)
	}
	if f.String() == "" {
		t.Fatal("empty formula")
	}
}
