// Package core is the public façade of the reproduction: it ties the
// Datalog(≠) engine, the L^k formula machinery, the existential k-pebble
// games, and the fixed-subgraph-homeomorphism case study together behind
// one API, re-exporting the principal types as aliases.
//
// The three workflows the paper motivates:
//
//   - Run Datalog(≠) queries: ParseProgram / ParseDatabase / Run.
//   - Decide expressibility relations: Preceq (Definition 4.1 via
//     Theorem 4.8), CheckInexpressibilityWitness (the Theorem 4.10
//     method).
//   - Decide fixed subgraph homeomorphism queries by the FHW dichotomy:
//     SolveHomeomorphism, ClassifyPattern.
package core

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/graph"
	"repro/internal/homeo"
	"repro/internal/logic"
	"repro/internal/pebble"
	"repro/internal/structure"
)

// Principal types, re-exported.
type (
	// Program is a Datalog(≠) program.
	Program = datalog.Program
	// Database is an extensional database instance.
	Database = datalog.Database
	// Result is an evaluation result (fixpoint + stages).
	Result = datalog.Result
	// Graph is a directed graph.
	Graph = graph.Graph
	// Structure is a finite relational structure.
	Structure = structure.Structure
	// Pattern is a fixed pattern graph H.
	Pattern = homeo.Pattern
	// Instance is an H-subgraph homeomorphism input.
	Instance = homeo.Instance
	// Formula is an existential positive formula of L^k.
	Formula = logic.Formula
)

// ParseProgram parses Datalog(≠) source text.
func ParseProgram(src string) (*Program, error) { return datalog.Parse(src) }

// ParseDatabase parses the facts text format.
func ParseDatabase(src string) (*Database, error) { return datalog.ParseDatabase(src) }

// Run evaluates a program to its least fixpoint with the default
// (semi-naive, indexed) engine.
func Run(p *Program, db *Database) (*Result, error) {
	return datalog.Eval(p, db, datalog.DefaultOptions)
}

// Preceq reports whether A ⪯k B: every sentence of L^k true in A is true
// in B, decided by the existential k-pebble game (Theorem 4.8 + the
// Proposition 5.3 algorithm). Feasible for small structures only; the
// error reports oversized instances.
func Preceq(k int, a, b *Structure) (bool, error) { return pebble.Preceq(k, a, b) }

// GameWinner decides the existential k-pebble game on (A, B) and returns
// "Player I" or "Player II".
func GameWinner(k int, a, b *Structure) (string, error) {
	w, err := pebble.NewGame(a, b, k).Solve()
	if err != nil {
		return "", err
	}
	return w.String(), nil
}

// Witness is an inexpressibility witness in the sense of Theorem 4.10: a
// pair (A, B) with A satisfying the query, B not, and A ⪯k B. The
// existence of such a pair for every k proves the query is not expressible
// in L^ω and a fortiori not in Datalog(≠).
type Witness struct {
	K    int
	A, B *Structure
	// ASatisfies and BSatisfies are the query values on A and B.
	ASatisfies, BSatisfies bool
	// IIWins reports whether Player II wins the existential k-pebble game.
	IIWins bool
}

// Valid reports whether the witness actually establishes the L^k lower
// bound.
func (w Witness) Valid() bool { return w.ASatisfies && !w.BSatisfies && w.IIWins }

// CheckInexpressibilityWitness assembles and validates a witness for a
// query given as a predicate on structures.
func CheckInexpressibilityWitness(k int, a, b *Structure, query func(*Structure) bool) (Witness, error) {
	w := Witness{K: k, A: a, B: b, ASatisfies: query(a), BSatisfies: query(b)}
	ok, err := Preceq(k, a, b)
	if err != nil {
		return w, err
	}
	w.IIWins = ok
	return w, nil
}

// PatternClass describes where a pattern falls in the FHW dichotomy.
type PatternClass struct {
	InC bool
	// Root and RootIsTail are set when InC.
	Root       int
	RootIsTail bool
	// Complexity is "PTIME" for C, "NP-complete" otherwise; on acyclic
	// inputs every pattern is PTIME (the second dichotomy).
	Complexity string
	// Datalog reports the paper's expressibility verdict for general
	// inputs: "Datalog(≠)-expressible (Theorem 6.1)" or
	// "not L^ω-expressible (Theorem 6.7)".
	Datalog string
}

// ClassifyPattern applies the two FHW dichotomies to a pattern.
func ClassifyPattern(p Pattern) PatternClass {
	root, asTail, ok := p.ClassCRoot()
	if ok {
		return PatternClass{
			InC: true, Root: root, RootIsTail: asTail,
			Complexity: "PTIME",
			Datalog:    "Datalog(≠)-expressible (Theorem 6.1)",
		}
	}
	return PatternClass{
		Complexity: "NP-complete",
		Datalog:    "not L^ω-expressible (Theorem 6.7)",
	}
}

// SolveHomeomorphism decides an H-subgraph homeomorphism query, choosing
// the algorithm by the dichotomies (flow for H ∈ C, the Theorem 6.2 game
// for acyclic inputs, brute force otherwise) and reporting which ran.
func SolveHomeomorphism(p Pattern, inst Instance) (bool, string, error) {
	return homeo.Solve(p, inst)
}

// StageFormula returns the Theorem 3.6 stage formula φ^n of a program's
// goal predicate, in at most l+r variables.
func StageFormula(p *Program, n int) (Formula, []string, error) {
	tr, err := logic.NewTranslator(p)
	if err != nil {
		return nil, nil, err
	}
	return tr.Stage(p.Goal, n), tr.HeadVars(p.Goal), nil
}

// GraphStructure wraps a graph with named constants as a structure.
func GraphStructure(g *Graph, constNames []string, nodes []int) *Structure {
	return structure.FromGraph(g, constNames, nodes)
}

// FormatRelation renders a relation's tuples for CLI output.
func FormatRelation(name string, r *datalog.Relation) string {
	out := fmt.Sprintf("%s (%d tuples):\n", name, r.Size())
	for _, t := range r.Tuples() {
		out += "  " + t.String() + "\n"
	}
	return out
}
