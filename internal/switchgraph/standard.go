package switchgraph

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/graph"
)

// Standard paths (proof of Theorem 6.6). A standard path from s1 to s2
// passes through every switch, from last to first, via exactly one of
// p(c,a) / q(c,a). A standard path from s3 to s4 passes through every
// switch via p(b,d)/q(b,d), descends exactly one column of every variable
// block, and crosses every clause gap n_{j-1}→n_j via the p(e,f) of one of
// the clause's switches. All standard s1→s2 paths share one length, and —
// when the formula is uniform (all literals of a variable occur equally
// often, as in φ_k) — so do all standard s3→s4 paths.

// PosKind classifies a position on a standard path.
type PosKind int

const (
	// PosFixed positions land on the same node in every standard path.
	PosFixed PosKind = iota
	// PosCA positions are interior to a c→a switch traversal; the node
	// depends on the p/q choice for that switch.
	PosCA
	// PosBD positions are interior to a b→d switch traversal.
	PosBD
	// PosCol positions are inside a variable block; the node depends on
	// the column choice for that variable.
	PosCol
	// PosEF positions are interior (or terminal e/f) to a clause gap; the
	// node depends on which occurrence switch carries the path.
	PosEF
)

func (k PosKind) String() string {
	switch k {
	case PosFixed:
		return "fixed"
	case PosCA:
		return "c→a"
	case PosBD:
		return "b→d"
	case PosCol:
		return "column"
	case PosEF:
		return "e→f"
	}
	return "?"
}

// PosDesc describes one position of a standard path layout.
type PosDesc struct {
	Kind   PosKind
	Node   int     // PosFixed: the node
	Switch *Switch // PosCA, PosBD: the switch
	Idx    int     // PosCA/PosBD: interior index 1..5; PosCol: segment offset 0..7; PosEF: offset 0..6
	Block  *VarBlock
	Seg    int // PosCol: occurrence segment within the column
	Clause int // PosEF: 0-based clause index
}

// Layout12 returns the position descriptors of the standard s1→s2 paths,
// ordered from s1 (index 0) to s2.
func (c *Construction) Layout12() []PosDesc {
	var out []PosDesc
	out = append(out, PosDesc{Kind: PosFixed, Node: c.S1})
	for i := len(c.Switches) - 1; i >= 0; i-- {
		sw := c.Switches[i]
		out = append(out, PosDesc{Kind: PosFixed, Node: sw.Node("c")})
		for idx := 1; idx <= 5; idx++ {
			out = append(out, PosDesc{Kind: PosCA, Switch: sw, Idx: idx})
		}
		out = append(out, PosDesc{Kind: PosFixed, Node: sw.Node("a")})
	}
	out = append(out, PosDesc{Kind: PosFixed, Node: c.S2})
	return out
}

// Uniform reports whether every pair of twin columns has equal length, so
// that all standard s3→s4 paths share one length (true for φ_k).
func (c *Construction) Uniform() bool {
	for _, b := range c.Blocks {
		if b.Pos.Len() != b.Neg.Len() {
			return false
		}
	}
	return true
}

// Layout34 returns the position descriptors of the standard s3→s4 paths.
// It panics when the construction is not uniform, since then different
// column choices yield different path lengths and no common layout exists.
func (c *Construction) Layout34() []PosDesc {
	if !c.Uniform() {
		panic("switchgraph: Layout34 requires a uniform construction")
	}
	var out []PosDesc
	out = append(out, PosDesc{Kind: PosFixed, Node: c.S3})
	for _, sw := range c.Switches {
		out = append(out, PosDesc{Kind: PosFixed, Node: sw.Node("b")})
		for idx := 1; idx <= 5; idx++ {
			out = append(out, PosDesc{Kind: PosBD, Switch: sw, Idx: idx})
		}
		out = append(out, PosDesc{Kind: PosFixed, Node: sw.Node("d")})
	}
	for _, b := range c.Blocks {
		out = append(out, PosDesc{Kind: PosFixed, Node: b.Top()})
		segs := len(b.Pos.Switches)
		if segs == 0 {
			// Degenerate empty columns: a single top→bottom edge.
			out = append(out, PosDesc{Kind: PosFixed, Node: b.Bottom()})
			continue
		}
		for s := 0; s < segs; s++ {
			for off := 0; off <= 6; off++ { // g, five interior, h
				out = append(out, PosDesc{Kind: PosCol, Block: b, Seg: s, Idx: off})
			}
			if s == segs-1 {
				out = append(out, PosDesc{Kind: PosFixed, Node: b.Bottom()})
			} else {
				out = append(out, PosDesc{Kind: PosCol, Block: b, Seg: s, Idx: 7})
			}
		}
	}
	for j := range c.ClauseSwitches {
		out = append(out, PosDesc{Kind: PosFixed, Node: c.ClauseNodes[j]})
		for off := 0; off <= 6; off++ { // e, five interior, f
			out = append(out, PosDesc{Kind: PosEF, Clause: j, Idx: off})
		}
	}
	out = append(out, PosDesc{Kind: PosFixed, Node: c.ClauseNodes[len(c.ClauseNodes)-1]})
	out = append(out, PosDesc{Kind: PosFixed, Node: c.S4})
	return out
}

// CANode resolves a c→a position: idx 0..6 along CA(p).
func (c *Construction) CANode(sw *Switch, p bool, idx int) int { return sw.CA(p)[idx] }

// BDNode resolves a b→d position: idx 0..6 along BD(p).
func (c *Construction) BDNode(sw *Switch, p bool, idx int) int { return sw.BD(p)[idx] }

// ColNode resolves a column position. neg selects the x̄ column; seg is the
// occurrence segment; off is 0 (g), 1..5 (q(g,h) interior), 6 (h), or 7
// (the junction below the segment).
func (c *Construction) ColNode(b *VarBlock, neg bool, seg, off int) int {
	col := b.Pos
	if neg {
		col = b.Neg
	}
	sw := col.Switches[seg]
	switch {
	case off == 7:
		return col.Junctions[seg+1]
	default:
		return sw.PathQGH()[off]
	}
}

// EFNode resolves a clause-gap position on the chosen switch: off 0..6
// along p(e,f).
func (c *Construction) EFNode(sw *Switch, off int) int { return sw.PathPEF()[off] }

// StandardPath12 materializes the standard s1→s2 path for the per-switch
// group choices (choices[sw.ID] = true selects the p-group).
func (c *Construction) StandardPath12(choices map[int]bool) graph.Path {
	var p graph.Path
	for _, d := range c.Layout12() {
		switch d.Kind {
		case PosFixed:
			p = append(p, d.Node)
		case PosCA:
			p = append(p, c.CANode(d.Switch, choices[d.Switch.ID], d.Idx))
		}
	}
	return p
}

// StandardPath34 materializes the standard s3→s4 path for a truth
// assignment (true literals route p-group; blocks descend the false
// literal's column) and per-clause occurrence picks (picks[j] indexes into
// ClauseSwitches[j]). The result need not be simple — for unsatisfiable
// formulas it never is (proof of Theorem 6.6).
func (c *Construction) StandardPath34(assign cnf.Assignment, picks []int) graph.Path {
	var p graph.Path
	for _, d := range c.Layout34() {
		switch d.Kind {
		case PosFixed:
			p = append(p, d.Node)
		case PosBD:
			lit := d.Switch.Literal
			litTrue := assign[lit.Var()] == lit.Positive()
			p = append(p, c.BDNode(d.Switch, litTrue, d.Idx))
		case PosCol:
			// x true → descend the x̄ column.
			p = append(p, c.ColNode(d.Block, assign[d.Block.Var], d.Seg, d.Idx))
		case PosEF:
			sw := c.ClauseSwitches[d.Clause][picks[d.Clause]]
			p = append(p, c.EFNode(sw, d.Idx))
		}
	}
	return p
}

// GroupChoice returns the p/q group a truth assignment induces for a
// switch: p when the occurrence's literal is true.
func GroupChoice(sw *Switch, assign cnf.Assignment) bool {
	return assign[sw.Literal.Var()] == sw.Literal.Positive()
}

// SatisfyingPicks returns, for each clause, the index of an occurrence
// whose literal is true under the assignment, or an error if some clause
// has none (the assignment does not satisfy the formula).
func (c *Construction) SatisfyingPicks(assign cnf.Assignment) ([]int, error) {
	picks := make([]int, len(c.ClauseSwitches))
	for j, sws := range c.ClauseSwitches {
		picks[j] = -1
		for i, sw := range sws {
			if assign[sw.Literal.Var()] == sw.Literal.Positive() {
				picks[j] = i
				break
			}
		}
		if picks[j] < 0 {
			return nil, fmt.Errorf("switchgraph: clause %d unsatisfied", j+1)
		}
	}
	return picks, nil
}
