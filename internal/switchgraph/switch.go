// Package switchgraph implements the gadget machinery of Section 6.2: the
// FHW switch (Figure 1), the variable and clause building blocks
// (Figure 2 and the clause chain), and the full reduction graph G_φ
// (Figures 3–6) mapping SATISFIABILITY to the two-disjoint-paths query.
//
// The switch is reconstructed from the six named passing paths the paper
// lists; Lemma 6.4 is then verified computationally by exhaustive
// enumeration of all passing paths (see the tests and experiment E7), so
// an incorrect reconstruction could not go unnoticed.
package switchgraph

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/graph"
)

// Terminal and internal node roles of a switch. Sources (indegree 0) are
// c, b, e, g; sinks (outdegree 0) are a, d, f, h.
var switchRoles = []string{
	"a", "b", "c", "d", "e", "f", "g", "h",
	"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12",
	"1'", "2'", "3'", "4'", "5'", "6'", "7'", "8'", "9'", "10'", "11'", "12'",
}

// The six distinguished passing paths of Figure 1, by role sequence.
// p-group: p(c,a), p(b,d), p(e,f); q-group: q(c,a), q(b,d), q(g,h).
var (
	rolesPCA = []string{"c", "5", "4", "3", "2", "1", "a"}
	rolesPBD = []string{"b", "6'", "2'", "7", "9", "12", "d"}
	rolesPEF = []string{"e", "8'", "9'", "10'", "4'", "11'", "f"}
	rolesQCA = []string{"c", "5'", "4'", "3'", "2'", "1'", "a"}
	rolesQBD = []string{"b", "6", "2", "7'", "9'", "12'", "d"}
	rolesQGH = []string{"g", "8", "9", "10", "4", "11", "h"}
)

// Switch is one instance of the Figure 1 gadget embedded in a larger
// graph, associated with one occurrence of a literal in a clause.
type Switch struct {
	// ID is the switch's position in the linking order of Figure 4.
	ID int
	// Literal is the occurrence's literal; Clause its clause index.
	Literal cnf.Literal
	Clause  int
	// nodes maps each role to the node id in the host graph.
	nodes map[string]int
}

// Node returns the host-graph node for a role; it panics on bad roles.
func (sw *Switch) Node(role string) int {
	v, ok := sw.nodes[role]
	if !ok {
		panic("switchgraph: unknown switch role " + role)
	}
	return v
}

// Has reports whether the node belongs to this switch and returns its role.
func (sw *Switch) Role(node int) (string, bool) {
	for role, v := range sw.nodes {
		if v == node {
			return role, true
		}
	}
	return "", false
}

func (sw *Switch) path(roles []string) graph.Path {
	p := make(graph.Path, len(roles))
	for i, r := range roles {
		p[i] = sw.nodes[r]
	}
	return p
}

// PathPCA returns p(c,a) = c,5,4,3,2,1,a as host-graph nodes. The other
// accessors follow the same naming.
func (sw *Switch) PathPCA() graph.Path { return sw.path(rolesPCA) }

// PathPBD returns p(b,d).
func (sw *Switch) PathPBD() graph.Path { return sw.path(rolesPBD) }

// PathPEF returns p(e,f).
func (sw *Switch) PathPEF() graph.Path { return sw.path(rolesPEF) }

// PathQCA returns q(c,a).
func (sw *Switch) PathQCA() graph.Path { return sw.path(rolesQCA) }

// PathQBD returns q(b,d).
func (sw *Switch) PathQBD() graph.Path { return sw.path(rolesQBD) }

// PathQGH returns q(g,h).
func (sw *Switch) PathQGH() graph.Path { return sw.path(rolesQGH) }

// CA returns the c→a traversal for the given group (true = p-group).
func (sw *Switch) CA(p bool) graph.Path {
	if p {
		return sw.PathPCA()
	}
	return sw.PathQCA()
}

// BD returns the b→d traversal for the given group (true = p-group).
func (sw *Switch) BD(p bool) graph.Path {
	if p {
		return sw.PathPBD()
	}
	return sw.PathQBD()
}

// AddSwitch appends a fresh switch to the graph, wiring the six passing
// paths, and labels its nodes in labels (may be nil).
func AddSwitch(g *graph.Graph, id int, lit cnf.Literal, clause int, labels map[int]string) *Switch {
	sw := &Switch{ID: id, Literal: lit, Clause: clause, nodes: map[string]int{}}
	for _, role := range switchRoles {
		v := g.AddNode()
		sw.nodes[role] = v
		if labels != nil {
			labels[v] = fmt.Sprintf("sw%d.%s", id, role)
		}
	}
	for _, roles := range [][]string{rolesPCA, rolesPBD, rolesPEF, rolesQCA, rolesQBD, rolesQGH} {
		for i := 0; i+1 < len(roles); i++ {
			g.AddEdge(sw.nodes[roles[i]], sw.nodes[roles[i+1]])
		}
	}
	return sw
}

// StandaloneSwitch builds a switch in its own graph (for Lemma 6.4 checks).
func StandaloneSwitch() (*graph.Graph, *Switch) {
	g := graph.New(0)
	sw := AddSwitch(g, 0, cnf.Literal(1), 0, nil)
	return g, sw
}

// PassingPaths enumerates all simple paths of the standalone switch that
// pass through it: start at an indegree-0 node and end at an outdegree-0
// node.
func PassingPaths(g *graph.Graph) []graph.Path {
	var sources, sinks []int
	for v := 0; v < g.N(); v++ {
		if g.InDegree(v) == 0 && g.OutDegree(v) > 0 {
			sources = append(sources, v)
		}
		if g.OutDegree(v) == 0 && g.InDegree(v) > 0 {
			sinks = append(sinks, v)
		}
	}
	var out []graph.Path
	for _, s := range sources {
		for _, t := range sinks {
			g.SimplePaths(s, t, 0, func(p graph.Path) {
				out = append(out, p)
			})
		}
	}
	return out
}
