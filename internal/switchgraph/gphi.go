package switchgraph

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/graph"
)

// Column is one vertical column of a variable building block (Figure 2):
// the literal's occurrences in series, each vertical edge replaced by the
// q(g,h) path of the occurrence's switch. Junctions[0] is the block's top
// node and Junctions[len-1] its bottom node (shared with the twin column).
type Column struct {
	Literal   cnf.Literal
	Junctions []int     // o+1 junctions for o switches
	Switches  []*Switch // the occurrence switches, top to bottom
}

// SegmentLen returns the number of edges contributed by one occurrence
// segment: junction→g, the six q(g,h) edges, h→junction... g and h ARE the
// endpoints of q(g,h), so a segment is j→g (1) + g..h (6) + h→j' (1) = 8.
const SegmentLen = 8

// Len returns the column's edge count.
func (c *Column) Len() int {
	if len(c.Switches) == 0 {
		return 1 // empty column degenerates to a single top→bottom edge
	}
	return SegmentLen * len(c.Switches)
}

// VarBlock is the building block of Figure 2 for one variable: two
// columns, sharing top and bottom junctions.
type VarBlock struct {
	Var int // 1-based variable index
	Pos *Column
	Neg *Column
}

// Top returns the block's entry node.
func (b *VarBlock) Top() int { return b.Pos.Junctions[0] }

// Bottom returns the block's exit node.
func (b *VarBlock) Bottom() int { return b.Pos.Junctions[len(b.Pos.Junctions)-1] }

// Construction is the reduction graph G_φ of Section 6.2 with all its
// labelled parts.
type Construction struct {
	G       *graph.Graph
	Formula *cnf.Formula

	S1, S2, S3, S4 int

	// Switches in linking order (Figure 4), one per literal occurrence.
	Switches []*Switch
	// Blocks for variables x_1..x_m in order.
	Blocks []*VarBlock
	// ClauseNodes are n_0..n_l.
	ClauseNodes []int
	// ClauseSwitches[j] lists the switches of clause j+1's occurrences.
	ClauseSwitches [][]*Switch

	// Labels names every node for DOT output and debugging.
	Labels map[int]string
}

// Build constructs G_φ for a CNF formula following Section 6.2:
//
//  1. one switch per literal occurrence; the occurrence's vertical edge in
//     its literal's column becomes the switch's q(g,h) path, and one of
//     the n_{j-1}→n_j routes of its clause becomes the switch's p(e,f);
//  2. switches are chained: d_i → b_{i+1} and a_i → c_{i-1};
//  3. the variable blocks are chained top to bottom and feed n_0;
//  4. s1 → c of the last switch, a of the first switch → s2,
//     s3 → b of the first switch, d of the last switch → top of block 1,
//     and n_l → s4.
func Build(f *cnf.Formula) *Construction {
	g := graph.New(0)
	c := &Construction{G: g, Formula: f, Labels: map[int]string{}}

	// Distinguished nodes first.
	c.S1 = g.AddNode()
	c.S2 = g.AddNode()
	c.S3 = g.AddNode()
	c.S4 = g.AddNode()
	c.Labels[c.S1] = "s1"
	c.Labels[c.S2] = "s2"
	c.Labels[c.S3] = "s3"
	c.Labels[c.S4] = "s4"

	// One switch per occurrence, in clause order (the linking order is
	// arbitrary per the paper; clause order keeps things readable).
	c.ClauseSwitches = make([][]*Switch, len(f.Clauses))
	byLiteral := map[cnf.Literal][]*Switch{}
	id := 0
	for j, clause := range f.Clauses {
		for _, lit := range clause {
			sw := AddSwitch(g, id, lit, j, c.Labels)
			c.Switches = append(c.Switches, sw)
			c.ClauseSwitches[j] = append(c.ClauseSwitches[j], sw)
			byLiteral[lit] = append(byLiteral[lit], sw)
			id++
		}
	}

	// Link the switches (Figure 4): d_i → b_{i+1}, a_{i+1} → c_i.
	for i := 0; i+1 < len(c.Switches); i++ {
		g.AddEdge(c.Switches[i].Node("d"), c.Switches[i+1].Node("b"))
		g.AddEdge(c.Switches[i+1].Node("a"), c.Switches[i].Node("c"))
	}

	// Variable building blocks.
	for v := 1; v <= f.Vars; v++ {
		top := g.AddNode()
		bottom := g.AddNode()
		c.Labels[top] = fmt.Sprintf("x%d.top", v)
		c.Labels[bottom] = fmt.Sprintf("x%d.bot", v)
		block := &VarBlock{
			Var: v,
			Pos: buildColumn(c, cnf.Literal(v), byLiteral[cnf.Literal(v)], top, bottom),
			Neg: buildColumn(c, cnf.Literal(-v), byLiteral[cnf.Literal(-v)], top, bottom),
		}
		c.Blocks = append(c.Blocks, block)
		if v > 1 {
			g.AddEdge(c.Blocks[v-2].Bottom(), top)
		}
	}

	// Clause chain n_0..n_l with one p(e,f) route per occurrence.
	for j := 0; j <= len(f.Clauses); j++ {
		n := g.AddNode()
		c.Labels[n] = fmt.Sprintf("n%d", j)
		c.ClauseNodes = append(c.ClauseNodes, n)
	}
	for j, sws := range c.ClauseSwitches {
		for _, sw := range sws {
			g.AddEdge(c.ClauseNodes[j], sw.Node("e"))
			g.AddEdge(sw.Node("f"), c.ClauseNodes[j+1])
		}
	}

	// Final wiring.
	last := c.Switches[len(c.Switches)-1]
	first := c.Switches[0]
	g.AddEdge(c.S1, last.Node("c"))
	g.AddEdge(first.Node("a"), c.S2)
	g.AddEdge(c.S3, first.Node("b"))
	g.AddEdge(last.Node("d"), c.Blocks[0].Top())
	g.AddEdge(c.Blocks[len(c.Blocks)-1].Bottom(), c.ClauseNodes[0])
	g.AddEdge(c.ClauseNodes[len(c.ClauseNodes)-1], c.S4)
	return c
}

func buildColumn(c *Construction, lit cnf.Literal, sws []*Switch, top, bottom int) *Column {
	g := c.G
	col := &Column{Literal: lit, Switches: sws}
	if len(sws) == 0 {
		// A literal with no occurrences: single direct edge.
		col.Junctions = []int{top, bottom}
		g.AddEdge(top, bottom)
		return col
	}
	col.Junctions = append(col.Junctions, top)
	cur := top
	for i, sw := range sws {
		g.AddEdge(cur, sw.Node("g"))
		var next int
		if i == len(sws)-1 {
			next = bottom
		} else {
			next = g.AddNode()
			c.Labels[next] = fmt.Sprintf("%s.j%d", lit, i+1)
		}
		g.AddEdge(sw.Node("h"), next)
		col.Junctions = append(col.Junctions, next)
		cur = next
	}
	return col
}

// TwoDisjointPathsQuery returns the graph and the four distinguished nodes
// of the H1-subgraph homeomorphism instance the reduction produces.
func (c *Construction) TwoDisjointPathsQuery() (g *graph.Graph, s1, s2, s3, s4 int) {
	return c.G, c.S1, c.S2, c.S3, c.S4
}

// DOT renders the construction in Graphviz syntax.
func (c *Construction) DOT(name string) string {
	hl := map[int]bool{c.S1: true, c.S2: true, c.S3: true, c.S4: true}
	return c.G.DOT(name, c.Labels, hl)
}

// Stats summarizes the construction's size.
func (c *Construction) Stats() string {
	return fmt.Sprintf("%d nodes, %d edges, %d switches, %d variable blocks, %d clauses",
		c.G.N(), c.G.M(), len(c.Switches), len(c.Blocks), len(c.ClauseSwitches))
}
