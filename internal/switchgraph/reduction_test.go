package switchgraph

import (
	"testing"

	"repro/internal/cnf"
)

// TestReductionFigure5 regenerates Figure 5: G_φ for φ = x1 ∨ ~x1, a
// satisfiable formula, which must admit two node-disjoint paths.
func TestReductionFigure5(t *testing.T) {
	c := Build(cnf.New(cnf.Clause{1, -1}))
	g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
	if !g.TwoDisjointPaths(s1, s2, s3, s4) {
		t.Fatal("satisfiable formula: G_φ must have two disjoint paths")
	}
}

// TestReductionFigure6 regenerates Figure 6: G_φ for φ = x1 ∧ ~x1, an
// unsatisfiable formula, which must NOT admit two node-disjoint paths.
func TestReductionFigure6(t *testing.T) {
	c := Build(cnf.New(cnf.Clause{1}, cnf.Clause{-1}))
	g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
	if g.TwoDisjointPaths(s1, s2, s3, s4) {
		t.Fatal("unsatisfiable formula: G_φ must have no two disjoint paths")
	}
}

// TestReductionCorpus checks φ SAT ⟺ two disjoint paths in G_φ over a
// corpus of small formulas covering both outcomes and various shapes.
func TestReductionCorpus(t *testing.T) {
	corpus := []*cnf.Formula{
		cnf.New(cnf.Clause{1}),                                        // SAT
		cnf.New(cnf.Clause{1}, cnf.Clause{-1}),                        // UNSAT
		cnf.New(cnf.Clause{1, -1}),                                    // SAT (tautology)
		cnf.New(cnf.Clause{1, 2}, cnf.Clause{-1, 2}),                  // SAT
		cnf.New(cnf.Clause{1, 2}, cnf.Clause{-1}, cnf.Clause{-2}),     // UNSAT
		cnf.Complete(1),                                               // UNSAT
		cnf.New(cnf.Clause{-1, -2}, cnf.Clause{1, -2}, cnf.Clause{2}), // SAT: x2 true forces x1 both ways? (-1∨-2)&(1∨-2)&(2): x2=true → need -1 and 1 — UNSAT actually
	}
	for i, f := range corpus {
		_, sat := f.Satisfiable()
		c := Build(f)
		g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
		got := g.TwoDisjointPaths(s1, s2, s3, s4)
		if got != sat {
			t.Fatalf("formula %d (%s): SAT=%v but disjoint-paths=%v (%s)",
				i, f, sat, got, c.Stats())
		}
	}
}

// TestReductionWitnessPaths extracts the actual disjoint paths for a
// satisfiable instance and checks they follow the standard-path structure:
// through every switch consistently in one group.
func TestReductionWitnessPaths(t *testing.T) {
	f := cnf.New(cnf.Clause{1, 2}, cnf.Clause{-1, 2})
	c := Build(f)
	g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
	paths := g.FindDisjointSimplePaths([]int{s1, s3}, []int{s2, s4})
	if paths == nil {
		t.Fatal("no witness")
	}
	// Path 1 must visit the a and c nodes of every switch; path 2 the b
	// and d nodes (the routing analysis in Section 6.2).
	on1 := map[int]bool{}
	for _, v := range paths[0] {
		on1[v] = true
	}
	on2 := map[int]bool{}
	for _, v := range paths[1] {
		on2[v] = true
	}
	for _, sw := range c.Switches {
		if !on1[sw.Node("a")] || !on1[sw.Node("c")] {
			t.Fatalf("switch %d: s1-path misses a or c", sw.ID)
		}
		if !on2[sw.Node("b")] || !on2[sw.Node("d")] {
			t.Fatalf("switch %d: s3-path misses b or d", sw.ID)
		}
	}
	// And path 2 must pass through every clause node.
	for _, n := range c.ClauseNodes {
		if !on2[n] {
			t.Fatal("s3-path misses a clause node")
		}
	}
}

// TestReductionSatisfyingAssignmentGivesPaths follows the constructive
// direction of the proof: a satisfying assignment yields a concrete pair
// of disjoint standard paths.
func TestReductionSatisfyingAssignmentGivesPaths(t *testing.T) {
	f := cnf.New(cnf.Clause{1, -2}, cnf.Clause{-1, 2}) // uniform, satisfiable
	assign, ok := f.Satisfiable()
	if !ok {
		t.Fatal("setup: satisfiable")
	}
	for v := 1; v <= f.Vars; v++ {
		if _, has := assign[v]; !has {
			assign[v] = true
		}
	}
	c := Build(f)
	if !c.Uniform() {
		t.Fatal("setup: construction must be uniform")
	}
	picks, err := c.SatisfyingPicks(assign)
	if err != nil {
		t.Fatal(err)
	}
	p2 := c.StandardPath34(assign, picks)
	choices := map[int]bool{}
	for _, sw := range c.Switches {
		choices[sw.ID] = GroupChoice(sw, assign)
	}
	p1 := c.StandardPath12(choices)
	if !p1.Simple() || !p2.Simple() {
		t.Fatal("standard paths from a satisfying assignment must be simple")
	}
	if !p1.ValidIn(c.G) || !p2.ValidIn(c.G) {
		t.Fatal("standard paths invalid")
	}
	shared := map[int]bool{}
	for _, v := range p1 {
		shared[v] = true
	}
	for _, v := range p2 {
		if shared[v] {
			t.Fatalf("standard paths intersect at node %d (%s)", v, c.Labels[v])
		}
	}
}
