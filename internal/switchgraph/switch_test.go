package switchgraph

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/graph"
)

func TestSwitchShape(t *testing.T) {
	g, sw := StandaloneSwitch()
	if g.N() != 32 {
		t.Fatalf("switch has %d nodes, want 32 (8 terminals + 24 internal)", g.N())
	}
	// Sources and sinks are exactly the terminals the reduction uses.
	wantSources := map[int]bool{sw.Node("b"): true, sw.Node("c"): true, sw.Node("e"): true, sw.Node("g"): true}
	wantSinks := map[int]bool{sw.Node("a"): true, sw.Node("d"): true, sw.Node("f"): true, sw.Node("h"): true}
	for v := 0; v < g.N(); v++ {
		if g.InDegree(v) == 0 && !wantSources[v] {
			t.Fatalf("unexpected source node %d", v)
		}
		if g.OutDegree(v) == 0 && !wantSinks[v] {
			t.Fatalf("unexpected sink node %d", v)
		}
	}
	// The six distinguished paths are valid and have length 6.
	for _, p := range []graph.Path{sw.PathPCA(), sw.PathPBD(), sw.PathPEF(), sw.PathQCA(), sw.PathQBD(), sw.PathQGH()} {
		if !p.ValidIn(g) {
			t.Fatalf("distinguished path %v invalid", p)
		}
		if p.Len() != 6 {
			t.Fatalf("distinguished path length %d, want 6", p.Len())
		}
		if !p.Simple() {
			t.Fatalf("distinguished path %v not simple", p)
		}
	}
}

func TestSwitchGroupsInternallyDisjoint(t *testing.T) {
	// The p-group paths are pairwise node-disjoint, likewise the q-group;
	// mixed pairs from opposite groups intersect except the (c,a)/(e,f)
	// and (b,d)/(g,h) combinations the reduction never mixes... in fact
	// Lemma 6.4 only needs: within-group disjointness, and that the
	// opposite-group "third path" clashes. Verify the stated clashes.
	_, sw := StandaloneSwitch()
	pGroup := []graph.Path{sw.PathPCA(), sw.PathPBD(), sw.PathPEF()}
	qGroup := []graph.Path{sw.PathQCA(), sw.PathQBD(), sw.PathQGH()}
	for i := range pGroup {
		for j := i + 1; j < len(pGroup); j++ {
			if !graph.NodeDisjoint(pGroup[i], pGroup[j], false) {
				t.Fatalf("p-group paths %d,%d intersect", i, j)
			}
			if !graph.NodeDisjoint(qGroup[i], qGroup[j], false) {
				t.Fatalf("q-group paths %d,%d intersect", i, j)
			}
		}
	}
	// q(g,h) clashes with both p(c,a) (node 4) and p(b,d) (node 9).
	if graph.NodeDisjoint(sw.PathQGH(), sw.PathPCA(), false) {
		t.Fatal("q(g,h) should intersect p(c,a)")
	}
	if graph.NodeDisjoint(sw.PathQGH(), sw.PathPBD(), false) {
		t.Fatal("q(g,h) should intersect p(b,d)")
	}
	// p(e,f) clashes with q(c,a) (node 4') and q(b,d) (node 9').
	if graph.NodeDisjoint(sw.PathPEF(), sw.PathQCA(), false) {
		t.Fatal("p(e,f) should intersect q(c,a)")
	}
	if graph.NodeDisjoint(sw.PathPEF(), sw.PathQBD(), false) {
		t.Fatal("p(e,f) should intersect q(b,d)")
	}
}

// TestLemma64 verifies the crucial combinatorial property of the switch
// (Lemma 6.4) by exhaustive enumeration of all passing paths.
func TestLemma64(t *testing.T) {
	g, sw := StandaloneSwitch()
	paths := PassingPaths(g)
	if len(paths) < 6 {
		t.Fatalf("only %d passing paths found", len(paths))
	}
	b, a, c, d := sw.Node("b"), sw.Node("a"), sw.Node("c"), sw.Node("d")
	pca, pbd, pef := sw.PathPCA(), sw.PathPBD(), sw.PathPEF()
	qca, qbd, qgh := sw.PathQCA(), sw.PathQBD(), sw.PathQGH()
	eq := func(x, y graph.Path) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	checked := 0
	for _, pa := range paths {
		if pa[len(pa)-1] != a {
			continue
		}
		for _, pb := range paths {
			if pb[0] != b {
				continue
			}
			if !graph.NodeDisjoint(pa, pb, false) {
				continue
			}
			checked++
			// Lemma: pa starts at c, pb ends at d.
			if pa[0] != c {
				t.Fatalf("disjoint pair with a-path starting at %d, not c", pa[0])
			}
			if pb[len(pb)-1] != d {
				t.Fatalf("disjoint pair with b-path ending at %d, not d", pb[len(pb)-1])
			}
			// And the pair is {p(c,a),p(b,d)} or {q(c,a),q(b,d)}.
			isP := eq(pa, pca) && eq(pb, pbd)
			isQ := eq(pa, qca) && eq(pb, qbd)
			if !isP && !isQ {
				t.Fatalf("unexpected disjoint pair:\n%v\n%v", pa, pb)
			}
			// The unique third disjoint passing path.
			var thirds []graph.Path
			for _, pc := range paths {
				if graph.NodeDisjoint(pc, pa, false) && graph.NodeDisjoint(pc, pb, false) {
					thirds = append(thirds, pc)
				}
			}
			if len(thirds) != 1 {
				t.Fatalf("expected exactly one third path, got %d", len(thirds))
			}
			if isP && !eq(thirds[0], pef) {
				t.Fatalf("third path for p-pair is %v, want p(e,f)", thirds[0])
			}
			if isQ && !eq(thirds[0], qgh) {
				t.Fatalf("third path for q-pair is %v, want q(g,h)", thirds[0])
			}
		}
	}
	if checked != 2 {
		t.Fatalf("expected exactly the two disjoint (a,b)-pairs, found %d", checked)
	}
}

func TestBuildStats(t *testing.T) {
	f := cnf.New(cnf.Clause{1, -1}) // Figure 5's formula x1 ∨ ~x1
	c := Build(f)
	if len(c.Switches) != 2 || len(c.Blocks) != 1 || len(c.ClauseNodes) != 2 {
		t.Fatalf("unexpected shape: %s", c.Stats())
	}
	// Everything reachable & labelled.
	for v := 0; v < c.G.N(); v++ {
		if _, ok := c.Labels[v]; !ok {
			t.Fatalf("node %d unlabelled", v)
		}
	}
	if c.DOT("gphi") == "" {
		t.Fatal("DOT output empty")
	}
}

func TestStandardPath12Valid(t *testing.T) {
	f := cnf.Complete(2)
	c := Build(f)
	// Any p/q choice combination yields a valid simple path of the same
	// length.
	lens := map[int]bool{}
	for mask := 0; mask < 4; mask++ {
		choices := map[int]bool{}
		for i := range c.Switches {
			choices[i] = (mask>>uint(i%2))&1 == 1
		}
		p := c.StandardPath12(choices)
		if !p.ValidIn(c.G) {
			t.Fatalf("mask %d: standard path invalid", mask)
		}
		if !p.Simple() {
			t.Fatalf("mask %d: standard path not simple", mask)
		}
		if p[0] != c.S1 || p[len(p)-1] != c.S2 {
			t.Fatalf("mask %d: wrong endpoints", mask)
		}
		lens[p.Len()] = true
	}
	if len(lens) != 1 {
		t.Fatalf("standard s1→s2 paths have varying lengths: %v", lens)
	}
}

func TestStandardPath34Valid(t *testing.T) {
	// On a satisfiable uniform formula, the standard s3→s4 path built
	// from a satisfying assignment is valid AND simple.
	f := cnf.New(cnf.Clause{1, -2}, cnf.Clause{-1, 2}) // uniform, satisfiable
	if !uniformFormula(f) {
		t.Fatal("setup: formula must be uniform")
	}
	c := Build(f)
	if !c.Uniform() {
		t.Fatal("construction should be uniform")
	}
	assign, ok := f.Satisfiable()
	if !ok {
		t.Fatal("setup: satisfiable")
	}
	// Complete the assignment on all vars.
	for v := 1; v <= f.Vars; v++ {
		if _, has := assign[v]; !has {
			assign[v] = true
		}
	}
	picks, err := c.SatisfyingPicks(assign)
	if err != nil {
		t.Fatal(err)
	}
	p := c.StandardPath34(assign, picks)
	if !p.ValidIn(c.G) {
		t.Fatal("standard s3→s4 path invalid")
	}
	if !p.Simple() {
		t.Fatal("standard s3→s4 path from a satisfying assignment must be simple")
	}
	if p[0] != c.S3 || p[len(p)-1] != c.S4 {
		t.Fatal("wrong endpoints")
	}
}

func uniformFormula(f *cnf.Formula) bool {
	occ := f.OccurrenceCount()
	for v := 1; v <= f.Vars; v++ {
		if occ[cnf.Literal(v)] != occ[cnf.Literal(-v)] {
			return false
		}
	}
	return true
}

func TestStandardPath34UniformLengths(t *testing.T) {
	f := cnf.Complete(2)
	c := Build(f)
	lens := map[int]bool{}
	for mask := 0; mask < 4; mask++ {
		assign := cnf.Assignment{1: mask&1 == 1, 2: mask&2 == 2}
		picks := make([]int, len(c.ClauseSwitches))
		for j := range picks {
			picks[j] = mask % len(c.ClauseSwitches[j])
		}
		p := c.StandardPath34(assign, picks)
		if !p.ValidIn(c.G) {
			t.Fatalf("mask %d: path steps over a non-edge", mask)
		}
		lens[p.Len()] = true
	}
	if len(lens) != 1 {
		t.Fatalf("standard s3→s4 lengths vary: %v", lens)
	}
}

func TestStandardPath34NotSimpleOnUnsat(t *testing.T) {
	// For the unsatisfiable φ_1, no standard path is simple: the paper
	// notes a simple standard path would yield a satisfying assignment.
	f := cnf.Complete(1)
	c := Build(f)
	for _, val := range []bool{true, false} {
		assign := cnf.Assignment{1: val}
		for p0 := 0; p0 < 1; p0++ {
			picks := []int{0, 0}
			p := c.StandardPath34(assign, picks)
			if p.Simple() && p.ValidIn(c.G) {
				t.Fatalf("assign x1=%v picks %v: simple valid standard path on UNSAT formula", val, picks)
			}
		}
	}
}

func TestLayout34RejectsNonUniform(t *testing.T) {
	f := cnf.New(cnf.Clause{1}, cnf.Clause{1}) // x1 occurs twice, ~x1 never
	c := Build(f)
	if c.Uniform() {
		t.Fatal("construction should be non-uniform")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Layout34 must panic on non-uniform constructions")
		}
	}()
	c.Layout34()
}

func TestLayoutsCoverPathPositions(t *testing.T) {
	f := cnf.Complete(2)
	c := Build(f)
	l12 := c.Layout12()
	l34 := c.Layout34()
	choices := map[int]bool{}
	p12 := c.StandardPath12(choices)
	if len(l12) != len(p12) {
		t.Fatalf("Layout12 has %d positions, path has %d nodes", len(l12), len(p12))
	}
	assign := cnf.Assignment{1: true, 2: true}
	picks := make([]int, len(c.ClauseSwitches))
	p34 := c.StandardPath34(assign, picks)
	if len(l34) != len(p34) {
		t.Fatalf("Layout34 has %d positions, path has %d nodes", len(l34), len(p34))
	}
	// Fixed positions resolve to the same node independent of choices.
	choices2 := map[int]bool{}
	for i := range c.Switches {
		choices2[i] = true
	}
	p12b := c.StandardPath12(choices2)
	for i, d := range l12 {
		if d.Kind == PosFixed && p12[i] != p12b[i] {
			t.Fatalf("fixed position %d moved between choices", i)
		}
		if d.Kind == PosFixed && p12[i] != d.Node {
			t.Fatalf("fixed position %d node mismatch", i)
		}
	}
}
