package switchgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
)

// uniformFormulaFromSeed generates small uniform formulas (clauses added
// in complementary pairs so every literal occurs as often as its
// negation). Total literal occurrences are capped at 4: each occurrence
// is a 32-node switch, and the UNSAT direction of the reduction check is
// decided by exhaustive path search, which blows up past ~150 nodes.
func uniformFormulaFromSeed(seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	nv := 1 + rng.Intn(2)
	var c cnf.Clause
	width := 1 + rng.Intn(2)
	for j := 0; j < width; j++ {
		v := 1 + rng.Intn(nv)
		if rng.Intn(2) == 0 {
			c = append(c, cnf.Literal(v))
		} else {
			c = append(c, cnf.Literal(-v))
		}
	}
	neg := make(cnf.Clause, len(c))
	for j, l := range c {
		neg[j] = l.Neg()
	}
	return cnf.New(c, neg)
}

func TestQuickReductionSoundOnRandomFormulas(t *testing.T) {
	prop := func(seed int64) bool {
		f := uniformFormulaFromSeed(seed)
		_, sat := f.Satisfiable()
		c := Build(f)
		g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
		return g.TwoDisjointPaths(s1, s2, s3, s4) == sat
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConstructionSize(t *testing.T) {
	// |G_φ| is linear in the number of literal occurrences: 32 nodes per
	// switch plus blocks, clause chain, junctions and the 4 distinguished
	// nodes.
	prop := func(seed int64) bool {
		f := uniformFormulaFromSeed(seed)
		c := Build(f)
		occ := 0
		for _, cl := range f.Clauses {
			occ += len(cl)
		}
		lower := 32 * occ
		upper := 32*occ + 8*occ + 4*f.Vars + len(f.Clauses) + 10
		return c.G.N() >= lower && c.G.N() <= upper
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStandardPathsLengthInvariant(t *testing.T) {
	// For uniform formulas all standard s3→s4 paths have the layout's
	// length regardless of assignment and picks.
	prop := func(seed int64, mask uint8) bool {
		f := uniformFormulaFromSeed(seed)
		c := Build(f)
		if !c.Uniform() {
			return true
		}
		assign := cnf.Assignment{}
		for v := 1; v <= f.Vars; v++ {
			assign[v] = mask&(1<<uint(v%8)) != 0
		}
		picks := make([]int, len(c.ClauseSwitches))
		for j := range picks {
			picks[j] = int(mask) % len(c.ClauseSwitches[j])
		}
		p := c.StandardPath34(assign, picks)
		return p.Len() == len(c.Layout34())-1 && p.ValidIn(c.G)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
