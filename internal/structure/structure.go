// Package structure implements finite relational structures over a
// vocabulary of relation and constant symbols — the semantic objects of the
// paper. Structures interpret every relation symbol by a set of tuples over
// a universe {0,...,N-1} and every constant symbol by an element.
//
// The package also provides the (partial one-to-one) homomorphism machinery
// that the existential k-pebble games of Section 4 are built on.
package structure

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// RelSymbol is a relation symbol with its arity.
type RelSymbol struct {
	Name  string
	Arity int
}

// Vocabulary is a finite list of relation symbols and constant symbols
// (Definition 3.1's proviso: vocabularies are finite).
type Vocabulary struct {
	Relations []RelSymbol
	Constants []string
}

// NewVocabulary builds a vocabulary; it panics on duplicate names or
// non-positive arities, which are programming errors.
func NewVocabulary(rels []RelSymbol, consts []string) *Vocabulary {
	seen := map[string]bool{}
	for _, r := range rels {
		if r.Arity <= 0 {
			panic(fmt.Sprintf("structure: relation %s has arity %d", r.Name, r.Arity))
		}
		if seen[r.Name] {
			panic("structure: duplicate relation symbol " + r.Name)
		}
		seen[r.Name] = true
	}
	for _, c := range consts {
		if seen[c] {
			panic("structure: duplicate symbol " + c)
		}
		seen[c] = true
	}
	return &Vocabulary{Relations: rels, Constants: consts}
}

// Relation looks up a relation symbol by name.
func (v *Vocabulary) Relation(name string) (RelSymbol, bool) {
	for _, r := range v.Relations {
		if r.Name == name {
			return r, true
		}
	}
	return RelSymbol{}, false
}

// GraphVocabulary returns the vocabulary of directed graphs with the given
// constant symbols: a single binary relation E plus the constants.
func GraphVocabulary(constants ...string) *Vocabulary {
	return NewVocabulary([]RelSymbol{{Name: "E", Arity: 2}}, constants)
}

// Tuple is a tuple of universe elements.
type Tuple []int

// key returns a canonical map key for the tuple. Universe elements are
// small non-negative ints, so instead of formatting decimal text (which
// costs a strings.Builder plus one strconv per element — measurably hot in
// the pebble-game solver, whose position families key on tuples) the
// elements are packed as fixed-width bytes behind a one-byte width tag.
// The width is a pure function of the tuple's contents and tuples compared
// within one map share an arity, so the encoding is injective.
func (t Tuple) key() string {
	wide := false
	for _, x := range t {
		if x < 0 || x > 0xff {
			wide = true
			break
		}
	}
	if !wide {
		b := make([]byte, 1+len(t))
		b[0] = 'b'
		for i, x := range t {
			b[1+i] = byte(x)
		}
		return string(b)
	}
	b := make([]byte, 1+8*len(t))
	b[0] = 'q'
	for i, x := range t {
		binary.LittleEndian.PutUint64(b[1+8*i:], uint64(int64(x)))
	}
	return string(b)
}

// Relation is a set of same-arity tuples.
type Relation struct {
	Arity  int
	tuples map[string]Tuple
	// byElem indexes, for each universe element, the tuples containing it;
	// built lazily by the homomorphism checks.
	byElem map[int][]Tuple
	// fastSet mirrors the tuple set under a packed uint64 key (8 bits per
	// element) whenever every tuple fits — arity <= 7, elements < 256 —
	// so the membership probes that dominate pebble-game moves allocate
	// nothing. fastOK flips off permanently on the first unpackable tuple.
	fastSet map[uint64]struct{}
	fastOK  bool
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{
		Arity:   arity,
		tuples:  make(map[string]Tuple),
		fastSet: make(map[uint64]struct{}),
		fastOK:  arity <= 7,
	}
}

// fastKey packs t into a uint64 at 8 bits per element; ok is false when an
// element is out of byte range. Within one relation the arity is fixed, so
// the packing is injective.
func fastKey(t Tuple) (uint64, bool) {
	var k uint64
	for i, x := range t {
		if x < 0 || x > 0xff {
			return 0, false
		}
		k |= uint64(x) << uint(8*i)
	}
	return k, true
}

// Add inserts a tuple; it panics on arity mismatch and reports whether the
// tuple was new.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("structure: tuple %v in relation of arity %d", t, r.Arity))
	}
	k := t.key()
	if _, ok := r.tuples[k]; ok {
		return false
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples[k] = cp
	r.byElem = nil
	if r.fastOK {
		if fk, ok := fastKey(t); ok {
			r.fastSet[fk] = struct{}{}
		} else {
			r.fastOK = false
			r.fastSet = nil
		}
	}
	return true
}

// Has reports membership.
func (r *Relation) Has(t Tuple) bool {
	if r.fastOK {
		fk, ok := fastKey(t)
		if !ok {
			return false // every stored tuple packs, so t cannot be one
		}
		_, present := r.fastSet[fk]
		return present
	}
	_, ok := r.tuples[t.key()]
	return ok
}

// WarmIndexes forces construction of the lazy per-element tuple index so
// that later concurrent readers (the parallel pebble-game enumeration)
// never race to build it. Safe to call repeatedly.
func (r *Relation) WarmIndexes() { r.buildByElem() }

// buildByElem materializes the per-element index if absent.
func (r *Relation) buildByElem() {
	if r.byElem != nil {
		return
	}
	r.byElem = make(map[int][]Tuple)
	for _, t := range r.tuples {
		seen := map[int]bool{}
		for _, e := range t {
			if !seen[e] {
				seen[e] = true
				r.byElem[e] = append(r.byElem[e], t)
			}
		}
	}
}

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.tuples) }

// Tuples returns all tuples in deterministic (lexicographic) order.
func (r *Relation) Tuples() []Tuple {
	ts := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
	return ts
}

// TuplesWith returns the tuples containing element x.
func (r *Relation) TuplesWith(x int) []Tuple {
	r.buildByElem()
	return r.byElem[x]
}

// Structure is a finite relational structure.
type Structure struct {
	Voc  *Vocabulary
	N    int // universe is {0, ..., N-1}
	rels map[string]*Relation
	cons map[string]int
}

// New returns a structure over voc with an n-element universe, all
// relations empty and all constants interpreted as element 0 (override with
// SetConstant).
func New(voc *Vocabulary, n int) *Structure {
	s := &Structure{Voc: voc, N: n, rels: make(map[string]*Relation), cons: make(map[string]int)}
	for _, r := range voc.Relations {
		s.rels[r.Name] = NewRelation(r.Arity)
	}
	for _, c := range voc.Constants {
		s.cons[c] = 0
	}
	return s
}

// Rel returns the interpretation of the named relation; it panics on
// unknown names.
func (s *Structure) Rel(name string) *Relation {
	r, ok := s.rels[name]
	if !ok {
		panic("structure: unknown relation " + name)
	}
	return r
}

// AddFact inserts a tuple into the named relation.
func (s *Structure) AddFact(name string, t ...int) {
	for _, x := range t {
		if x < 0 || x >= s.N {
			panic(fmt.Sprintf("structure: element %d outside universe of size %d", x, s.N))
		}
	}
	s.Rel(name).Add(Tuple(t))
}

// SetConstant interprets the named constant as element x.
func (s *Structure) SetConstant(name string, x int) {
	if _, ok := s.cons[name]; !ok {
		panic("structure: unknown constant " + name)
	}
	if x < 0 || x >= s.N {
		panic(fmt.Sprintf("structure: constant %s = %d outside universe", name, x))
	}
	s.cons[name] = x
}

// Constant returns the interpretation of the named constant.
func (s *Structure) Constant(name string) int {
	x, ok := s.cons[name]
	if !ok {
		panic("structure: unknown constant " + name)
	}
	return x
}

// ConstantElems returns the constant interpretations in vocabulary order.
func (s *Structure) ConstantElems() []int {
	out := make([]int, len(s.Voc.Constants))
	for i, c := range s.Voc.Constants {
		out[i] = s.cons[c]
	}
	return out
}

// String renders the structure for debugging.
func (s *Structure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "universe=%d", s.N)
	for _, rs := range s.Voc.Relations {
		fmt.Fprintf(&b, " %s=%d", rs.Name, s.rels[rs.Name].Size())
	}
	for _, c := range s.Voc.Constants {
		fmt.Fprintf(&b, " %s=%d", c, s.cons[c])
	}
	return b.String()
}
