package structure

import "repro/internal/graph"

// FromGraph converts a directed graph with distinguished nodes into a
// relational structure over the graph vocabulary with one constant per
// distinguished node. constNames and distinguished run in parallel.
func FromGraph(g *graph.Graph, constNames []string, distinguished []int) *Structure {
	if len(constNames) != len(distinguished) {
		panic("structure: constant name/node count mismatch")
	}
	voc := GraphVocabulary(constNames...)
	s := New(voc, g.N())
	for _, e := range g.Edges() {
		s.AddFact("E", e[0], e[1])
	}
	for i, c := range constNames {
		s.SetConstant(c, distinguished[i])
	}
	return s
}

// ToGraph converts a structure over a vocabulary containing the binary
// relation E back into a directed graph, ignoring other relations.
func ToGraph(s *Structure) *graph.Graph {
	g := graph.New(s.N)
	for _, t := range s.Rel("E").Tuples() {
		g.AddEdge(t[0], t[1])
	}
	return g
}
