package structure

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestIsomorphicBasics(t *testing.T) {
	a := FromGraph(graph.DirectedPath(4), nil, nil)
	b := FromGraph(graph.DirectedPath(4), nil, nil)
	if !Isomorphic(a, b) {
		t.Fatal("identical paths are isomorphic")
	}
	c := FromGraph(graph.DirectedCycle(4), nil, nil)
	if Isomorphic(a, c) {
		t.Fatal("path vs cycle")
	}
	d := FromGraph(graph.DirectedPath(5), nil, nil)
	if Isomorphic(a, d) {
		t.Fatal("different sizes")
	}
}

func TestIsomorphicUnderRelabeling(t *testing.T) {
	prop := func(seed, permSeed int64) bool {
		g := graph.Random(6, 0.3, rand.New(rand.NewSource(seed)))
		perm := rand.New(rand.NewSource(permSeed)).Perm(6)
		h := graph.New(6)
		for _, e := range g.Edges() {
			h.AddEdge(perm[e[0]], perm[e[1]])
		}
		return Isomorphic(FromGraph(g, nil, nil), FromGraph(h, nil, nil))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIsomorphicDetectsEdgeFlip(t *testing.T) {
	// Same degree sequence, different structure: 0->1->2 vs 0->1<-2.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	h := graph.New(3)
	h.AddEdge(0, 1)
	h.AddEdge(2, 1)
	if Isomorphic(FromGraph(g, nil, nil), FromGraph(h, nil, nil)) {
		t.Fatal("chain vs confluence misjudged")
	}
}

func TestIsomorphicRespectsConstants(t *testing.T) {
	g := graph.DirectedPath(3)
	a := FromGraph(g, []string{"s"}, []int{0})
	b := FromGraph(g, []string{"s"}, []int{2})
	if Isomorphic(a, b) {
		t.Fatal("constants pin the endpoints: source vs sink")
	}
	c := FromGraph(g, []string{"s"}, []int{0})
	if !Isomorphic(a, c) {
		t.Fatal("same pinning should be isomorphic")
	}
}

func TestIsomorphicStrictOnSubrelations(t *testing.T) {
	// Same node count, A's edges a strict subset of B's: a one-to-one
	// homomorphism exists, an isomorphism does not.
	g := graph.DirectedPath(4)
	h := graph.DirectedPath(4)
	h.AddEdge(0, 2)
	a := FromGraph(g, nil, nil)
	b := FromGraph(h, nil, nil)
	if !TotalHomomorphismExists(a, b, true) {
		t.Fatal("embedding exists")
	}
	if Isomorphic(a, b) {
		t.Fatal("edge counts differ: not isomorphic")
	}
}
