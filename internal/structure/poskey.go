package structure

import "encoding/binary"

// Packed position keys. The pebble-game solver enumerates families of
// partial maps and dedups, indexes and probes them constantly, so key
// construction is its hottest operation — exactly the role tupleKey plays
// in the Datalog engine, and the encoding mirrors that scheme. A position
// is a sorted sequence of (a,b) pairs over the fixed universes
// A = {0..aN-1} and B = {0..bN-1}; since the universes and the maximum
// pair count are known when a game is built, a PosCoder picks the minimal
// per-pair width once and packs every position of the game into a single
// uint64: pair i occupies pairBits = bits(aN)+bits(bN) bits at offset
// i·pairBits, and the pair count sits above the payload so positions of
// different lengths can never collide inside one map. Domain elements are
// distinct and pairs are kept sorted by domain, so the encoding is
// injective.
//
// Positions that cannot fit — count·pairBits plus the count field
// exceeding 64 bits — spill to a raw-byte string of fixed 8-byte words
// behind a marker byte. A coder is entirely packed or entirely spill, so
// the two modes never mix inside one family.

// PosKey is a canonical, comparable key for a PartialMap position. Packed
// keys carry an empty spill string and cost no allocation; spill keys are
// always non-empty strings.
type PosKey struct {
	packed uint64
	spill  string
}

// PosCoder encodes positions over fixed universes. The zero value is not
// usable; call NewPosCoder.
type PosCoder struct {
	aBits, bBits uint
	pairBits     uint
	countShift   uint
	maxPairs     int
	packed       bool
}

// bitsFor returns the minimal width holding values 0..n-1 (at least 1).
func bitsFor(n int) uint {
	b := uint(1)
	for n > 1<<b {
		b++
	}
	return b
}

// NewPosCoder builds a coder for positions with at most maxPairs pairs
// (a,b), a < aN, b < bN.
func NewPosCoder(aN, bN, maxPairs int) PosCoder {
	c := PosCoder{aBits: bitsFor(aN), bBits: bitsFor(bN), maxPairs: maxPairs}
	c.pairBits = c.aBits + c.bBits
	cntBits := bitsFor(maxPairs + 1)
	c.countShift = uint(maxPairs) * c.pairBits
	c.packed = c.countShift+cntBits <= 64
	return c
}

// Packed reports whether the coder fits every position into a uint64; when
// false all keys spill to strings.
func (c PosCoder) Packed() bool { return c.packed }

// MaxPairs returns the pair-count bound the coder was built for; keys of
// longer positions are undefined.
func (c PosCoder) MaxPairs() int { return c.maxPairs }

// Key returns the canonical key of m.
func (c PosCoder) Key(m PartialMap) PosKey {
	if c.packed {
		k := uint64(m.Len()) << c.countShift
		shift := uint(0)
		for i := 0; i < m.Len(); i++ {
			a, b := m.At(i)
			k |= (uint64(a)<<c.bBits | uint64(b)) << shift
			shift += c.pairBits
		}
		return PosKey{packed: k}
	}
	buf := make([]byte, 1+16*m.Len())
	buf[0] = 's'
	for i := 0; i < m.Len(); i++ {
		a, b := m.At(i)
		binary.LittleEndian.PutUint64(buf[1+16*i:], uint64(int64(a)))
		binary.LittleEndian.PutUint64(buf[1+16*i+8:], uint64(int64(b)))
	}
	return PosKey{spill: string(buf)}
}

// KeyExtend returns the key of m ∪ {(a,b)} without materializing the
// extended map. The caller must ensure a is not already in the domain.
func (c PosCoder) KeyExtend(m PartialMap, a, b int) PosKey {
	if c.packed {
		k := uint64(m.Len()+1) << c.countShift
		shift := uint(0)
		inserted := false
		for i := 0; i < m.Len(); i++ {
			ai, bi := m.At(i)
			if !inserted && ai > a {
				k |= (uint64(a)<<c.bBits | uint64(b)) << shift
				shift += c.pairBits
				inserted = true
			}
			k |= (uint64(ai)<<c.bBits | uint64(bi)) << shift
			shift += c.pairBits
		}
		if !inserted {
			k |= (uint64(a)<<c.bBits | uint64(b)) << shift
		}
		return PosKey{packed: k}
	}
	buf := make([]byte, 1+16*(m.Len()+1))
	buf[0] = 's'
	j := 0
	inserted := false
	put := func(a, b int) {
		binary.LittleEndian.PutUint64(buf[1+16*j:], uint64(int64(a)))
		binary.LittleEndian.PutUint64(buf[1+16*j+8:], uint64(int64(b)))
		j++
	}
	for i := 0; i < m.Len(); i++ {
		ai, bi := m.At(i)
		if !inserted && ai > a {
			put(a, b)
			inserted = true
		}
		put(ai, bi)
	}
	if !inserted {
		put(a, b)
	}
	return PosKey{spill: string(buf)}
}

// KeyWithout returns the key of m with its skip-th pair (in domain order)
// removed, without materializing the reduced map.
func (c PosCoder) KeyWithout(m PartialMap, skip int) PosKey {
	if c.packed {
		k := uint64(m.Len()-1) << c.countShift
		shift := uint(0)
		for i := 0; i < m.Len(); i++ {
			if i == skip {
				continue
			}
			a, b := m.At(i)
			k |= (uint64(a)<<c.bBits | uint64(b)) << shift
			shift += c.pairBits
		}
		return PosKey{packed: k}
	}
	buf := make([]byte, 1+16*(m.Len()-1))
	buf[0] = 's'
	j := 0
	for i := 0; i < m.Len(); i++ {
		if i == skip {
			continue
		}
		a, b := m.At(i)
		binary.LittleEndian.PutUint64(buf[1+16*j:], uint64(int64(a)))
		binary.LittleEndian.PutUint64(buf[1+16*j+8:], uint64(int64(b)))
		j++
	}
	return PosKey{spill: string(buf)}
}
