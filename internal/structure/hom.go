package structure

// PartialMap is a partial function from the universe of a structure A to
// the universe of a structure B, represented as a pair-slice kept sorted by
// domain element. It is the object the existential k-pebble game
// (Definition 4.6) calls a candidate partial one-to-one homomorphism.
type PartialMap struct {
	dom []int // sorted
	img []int // img[i] = image of dom[i]
}

// NewPartialMap returns the empty map.
func NewPartialMap() PartialMap { return PartialMap{} }

// Len returns the number of pairs.
func (m PartialMap) Len() int { return len(m.dom) }

// Lookup returns the image of a and whether a is in the domain.
func (m PartialMap) Lookup(a int) (int, bool) {
	lo, hi := 0, len(m.dom)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.dom[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.dom) && m.dom[lo] == a {
		return m.img[lo], true
	}
	return 0, false
}

// HasImage reports whether b is in the range.
func (m PartialMap) HasImage(b int) bool {
	for _, y := range m.img {
		if y == b {
			return true
		}
	}
	return false
}

// Extend returns a copy of m with the pair (a,b) added. It panics if a is
// already in the domain with a different image; Extend(a, same-b) returns m
// unchanged.
func (m PartialMap) Extend(a, b int) PartialMap {
	if old, ok := m.Lookup(a); ok {
		if old != b {
			panic("structure: Extend conflicts with existing pair")
		}
		return m
	}
	n := len(m.dom)
	dom := make([]int, 0, n+1)
	img := make([]int, 0, n+1)
	inserted := false
	for i := 0; i < n; i++ {
		if !inserted && m.dom[i] > a {
			dom = append(dom, a)
			img = append(img, b)
			inserted = true
		}
		dom = append(dom, m.dom[i])
		img = append(img, m.img[i])
	}
	if !inserted {
		dom = append(dom, a)
		img = append(img, b)
	}
	return PartialMap{dom: dom, img: img}
}

// Remove returns a copy of m with a removed from the domain (no-op if a is
// not in the domain).
func (m PartialMap) Remove(a int) PartialMap {
	for i, d := range m.dom {
		if d == a {
			dom := make([]int, 0, len(m.dom)-1)
			img := make([]int, 0, len(m.img)-1)
			dom = append(dom, m.dom[:i]...)
			dom = append(dom, m.dom[i+1:]...)
			img = append(img, m.img[:i]...)
			img = append(img, m.img[i+1:]...)
			return PartialMap{dom: dom, img: img}
		}
	}
	return m
}

// At returns the i-th pair in domain order. It is the allocation-free
// accessor the pebble-game solver iterates positions with; use Pairs when
// a materialized slice is wanted.
func (m PartialMap) At(i int) (a, b int) { return m.dom[i], m.img[i] }

// Pairs returns the (a,b) pairs in domain order.
func (m PartialMap) Pairs() [][2]int {
	out := make([][2]int, len(m.dom))
	for i := range m.dom {
		out[i] = [2]int{m.dom[i], m.img[i]}
	}
	return out
}

// Injective reports whether no two domain elements share an image.
func (m PartialMap) Injective() bool {
	seen := make(map[int]bool, len(m.img))
	for _, y := range m.img {
		if seen[y] {
			return false
		}
		seen[y] = true
	}
	return true
}

// Key returns a canonical string key for use in maps.
func (m PartialMap) Key() string {
	t := make(Tuple, 0, 2*len(m.dom))
	for i := range m.dom {
		t = append(t, m.dom[i], m.img[i])
	}
	return t.key()
}

// IsPartialHomomorphism reports whether m is a homomorphism between the
// substructures of A and B induced by its domain and range: every tuple of
// every relation of A lying entirely inside dom(m) must map to a tuple of
// the same relation of B. Constants are NOT checked here; callers that
// need the constant condition of Definition 4.6 include the constant pairs
// in m and verify them with RespectsConstants.
func IsPartialHomomorphism(a, b *Structure, m PartialMap) bool {
	for _, rs := range a.Voc.Relations {
		ra, rb := a.Rel(rs.Name), b.Rel(rs.Name)
		for _, d := range m.dom {
			for _, t := range ra.TuplesWith(d) {
				img, ok := mapTuple(m, t)
				if !ok {
					continue // tuple not entirely inside dom(m)
				}
				if !rb.Has(img) {
					return false
				}
			}
		}
	}
	return true
}

// IsPartialOneToOneHomomorphism reports whether m is injective and a
// partial homomorphism (the paper's partial one-to-one homomorphism).
func IsPartialOneToOneHomomorphism(a, b *Structure, m PartialMap) bool {
	return m.Injective() && IsPartialHomomorphism(a, b, m)
}

// ExtensionOK reports whether the single new pair (x,y) keeps m∪{(x,y)} a
// partial homomorphism, assuming m already is one. Only tuples through x
// need checking, which keeps pebble-game moves cheap. If oneToOne is set it
// also rejects y already in the range of m.
func ExtensionOK(a, b *Structure, m PartialMap, x, y int, oneToOne bool) bool {
	ok, _ := ExtensionOKBuf(a, b, m, x, y, oneToOne, nil)
	return ok
}

// ExtensionOKBuf is ExtensionOK with a caller-provided scratch tuple, so
// the pebble-game enumeration (which performs this check for every
// candidate pair of every position) allocates nothing per probe. The
// returned slice is the possibly-grown scratch buffer to reuse.
func ExtensionOKBuf(a, b *Structure, m PartialMap, x, y int, oneToOne bool, buf Tuple) (bool, Tuple) {
	if old, ok := m.Lookup(x); ok {
		return old == y, buf
	}
	if oneToOne && m.HasImage(y) {
		return false, buf
	}
	for _, rs := range a.Voc.Relations {
		ra, rb := a.Rel(rs.Name), b.Rel(rs.Name)
		for _, t := range ra.TuplesWith(x) {
			if cap(buf) < len(t) {
				buf = make(Tuple, len(t))
			}
			img := buf[:len(t)]
			inside := true
			for i, e := range t {
				if e == x {
					img[i] = y
					continue
				}
				v, ok := m.Lookup(e)
				if !ok {
					inside = false
					break
				}
				img[i] = v
			}
			if !inside {
				continue
			}
			if !rb.Has(img) {
				return false, buf
			}
		}
	}
	return true, buf
}

// RespectsConstants reports whether m maps each constant of A to the
// corresponding constant of B (and contains all constant pairs).
func RespectsConstants(a, b *Structure, m PartialMap) bool {
	for _, c := range a.Voc.Constants {
		img, ok := m.Lookup(a.Constant(c))
		if !ok || img != b.Constant(c) {
			return false
		}
	}
	return true
}

// ConstantMap returns the partial map sending each constant of A to the
// corresponding constant of B — the initial position of the existential
// pebble game.
func ConstantMap(a, b *Structure) PartialMap {
	m := NewPartialMap()
	for _, c := range a.Voc.Constants {
		ca, cb := a.Constant(c), b.Constant(c)
		if old, ok := m.Lookup(ca); ok {
			if old != cb {
				// Two constants of A coincide but their B counterparts do
				// not: no homomorphism can respect them. Signal with an
				// empty map plus failure through IsPartialHomomorphism by
				// returning a conflicting marker; callers use
				// ConstantMapOK first.
				return m
			}
			continue
		}
		m = m.Extend(ca, cb)
	}
	return m
}

// ConstantMapOK reports whether the constant interpretations of A and B
// are compatible with a single well-defined injective map.
func ConstantMapOK(a, b *Structure) bool {
	fwd := map[int]int{}
	bwd := map[int]int{}
	for _, c := range a.Voc.Constants {
		ca, cb := a.Constant(c), b.Constant(c)
		if y, ok := fwd[ca]; ok && y != cb {
			return false
		}
		if x, ok := bwd[cb]; ok && x != ca {
			return false
		}
		fwd[ca] = cb
		bwd[cb] = ca
	}
	return true
}

// TotalHomomorphismExists reports whether there is a (total) homomorphism
// from A to B respecting constants; if oneToOne it must be injective.
// Exponential backtracking search — ground truth for small structures.
func TotalHomomorphismExists(a, b *Structure, oneToOne bool) bool {
	if !ConstantMapOK(a, b) {
		return false
	}
	m := ConstantMap(a, b)
	if oneToOne && !m.Injective() {
		return false
	}
	if !IsPartialHomomorphism(a, b, m) {
		return false
	}
	var rec func(x int, m PartialMap) bool
	rec = func(x int, m PartialMap) bool {
		if x == a.N {
			return true
		}
		if _, ok := m.Lookup(x); ok {
			return rec(x+1, m)
		}
		for y := 0; y < b.N; y++ {
			if ExtensionOK(a, b, m, x, y, oneToOne) {
				if rec(x+1, m.Extend(x, y)) {
					return true
				}
			}
		}
		return false
	}
	return rec(0, m)
}

// Isomorphic reports whether A and B are isomorphic: a bijection of the
// universes preserving every relation in both directions and the
// constants. Backtracking search — ground truth for small structures
// (e.g. deduplicating enumeration up to isomorphism, as in the proof of
// Proposition 4.2).
func Isomorphic(a, b *Structure) bool {
	if a.N != b.N {
		return false
	}
	for _, rs := range a.Voc.Relations {
		if a.Rel(rs.Name).Size() != b.Rel(rs.Name).Size() {
			return false
		}
	}
	if !ConstantMapOK(a, b) || !ConstantMapOK(b, a) {
		return false
	}
	m := ConstantMap(a, b)
	if !m.Injective() {
		return false
	}
	var rec func(x int, m PartialMap) bool
	rec = func(x int, m PartialMap) bool {
		if x == a.N {
			// m is a total injective (hence bijective) homomorphism;
			// check the inverse direction tuple counts force equality of
			// relations, but verify explicitly for safety.
			for _, rs := range a.Voc.Relations {
				for _, t := range b.Rel(rs.Name).Tuples() {
					pre := make(Tuple, len(t))
					for i, y := range t {
						found := false
						for _, pair := range m.Pairs() {
							if pair[1] == y {
								pre[i] = pair[0]
								found = true
								break
							}
						}
						if !found {
							return false
						}
					}
					if !a.Rel(rs.Name).Has(pre) {
						return false
					}
				}
			}
			return true
		}
		if _, ok := m.Lookup(x); ok {
			return rec(x+1, m)
		}
		for y := 0; y < b.N; y++ {
			if ExtensionOK(a, b, m, x, y, true) {
				if rec(x+1, m.Extend(x, y)) {
					return true
				}
			}
		}
		return false
	}
	return rec(0, m)
}

func mapTuple(m PartialMap, t Tuple) (Tuple, bool) {
	img := make(Tuple, len(t))
	for i, x := range t {
		y, ok := m.Lookup(x)
		if !ok {
			return nil, false
		}
		img[i] = y
	}
	return img, true
}
