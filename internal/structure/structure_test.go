package structure

import (
	"testing"

	"repro/internal/graph"
)

func TestVocabularyValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dup relation", func() {
		NewVocabulary([]RelSymbol{{"E", 2}, {"E", 3}}, nil)
	})
	mustPanic("zero arity", func() {
		NewVocabulary([]RelSymbol{{"E", 0}}, nil)
	})
	mustPanic("relation/constant clash", func() {
		NewVocabulary([]RelSymbol{{"E", 2}}, []string{"E"})
	})
	v := GraphVocabulary("s", "t")
	if r, ok := v.Relation("E"); !ok || r.Arity != 2 {
		t.Fatal("graph vocabulary malformed")
	}
	if _, ok := v.Relation("F"); ok {
		t.Fatal("unknown relation found")
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(2)
	if !r.Add(Tuple{1, 2}) {
		t.Fatal("fresh add")
	}
	if r.Add(Tuple{1, 2}) {
		t.Fatal("duplicate add")
	}
	r.Add(Tuple{2, 1})
	if !r.Has(Tuple{1, 2}) || r.Has(Tuple{2, 2}) {
		t.Fatal("membership wrong")
	}
	if r.Size() != 2 {
		t.Fatalf("size = %d, want 2", r.Size())
	}
	ts := r.Tuples()
	if len(ts) != 2 || ts[0][0] != 1 {
		t.Fatalf("tuples not sorted: %v", ts)
	}
	with1 := r.TuplesWith(1)
	if len(with1) != 2 {
		t.Fatalf("TuplesWith(1) = %v, want both tuples", with1)
	}
	if got := r.TuplesWith(9); len(got) != 0 {
		t.Fatalf("TuplesWith(9) = %v, want empty", got)
	}
}

func TestTupleKeyDistinguishes(t *testing.T) {
	// (1,23) vs (12,3) must not collide.
	a := Tuple{1, 23}
	b := Tuple{12, 3}
	if a.key() == b.key() {
		t.Fatal("tuple key collision")
	}
}

func TestRelationIndexInvalidation(t *testing.T) {
	r := NewRelation(1)
	r.Add(Tuple{0})
	_ = r.TuplesWith(0) // builds index
	r.Add(Tuple{1})
	if len(r.TuplesWith(1)) != 1 {
		t.Fatal("index stale after Add")
	}
}

func TestStructureConstants(t *testing.T) {
	s := New(GraphVocabulary("s", "t"), 5)
	s.SetConstant("s", 1)
	s.SetConstant("t", 4)
	if s.Constant("s") != 1 || s.Constant("t") != 4 {
		t.Fatal("constants wrong")
	}
	ce := s.ConstantElems()
	if len(ce) != 2 || ce[0] != 1 || ce[1] != 4 {
		t.Fatalf("ConstantElems = %v", ce)
	}
}

func TestAddFactBounds(t *testing.T) {
	s := New(GraphVocabulary(), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-universe fact should panic")
		}
	}()
	s.AddFact("E", 0, 3)
}

func TestPartialMapOps(t *testing.T) {
	m := NewPartialMap().Extend(3, 7).Extend(1, 5)
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	if y, ok := m.Lookup(3); !ok || y != 7 {
		t.Fatal("lookup 3 failed")
	}
	if _, ok := m.Lookup(2); ok {
		t.Fatal("phantom lookup")
	}
	if !m.HasImage(5) || m.HasImage(6) {
		t.Fatal("HasImage wrong")
	}
	pairs := m.Pairs()
	if pairs[0] != [2]int{1, 5} || pairs[1] != [2]int{3, 7} {
		t.Fatalf("pairs unsorted: %v", pairs)
	}
	m2 := m.Remove(3)
	if m2.Len() != 1 || m.Len() != 2 {
		t.Fatal("Remove must not mutate the receiver")
	}
	if m.Key() == m2.Key() {
		t.Fatal("keys should differ")
	}
	if !m.Injective() {
		t.Fatal("injective map misclassified")
	}
	if NewPartialMap().Extend(0, 4).Extend(1, 4).Injective() {
		t.Fatal("non-injective map misclassified")
	}
	// Extending with an existing identical pair is a no-op.
	if m.Extend(1, 5).Len() != 2 {
		t.Fatal("re-extend changed map")
	}
}

func TestExtendConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting Extend should panic")
		}
	}()
	NewPartialMap().Extend(1, 5).Extend(1, 6)
}

func pathStructure(n int) *Structure {
	return FromGraph(graph.DirectedPath(n), nil, nil)
}

func TestIsPartialHomomorphism(t *testing.T) {
	a := pathStructure(3) // 0->1->2
	b := pathStructure(5)
	ok := NewPartialMap().Extend(0, 1).Extend(1, 2)
	if !IsPartialOneToOneHomomorphism(a, b, ok) {
		t.Fatal("shift-by-one should be a partial 1-1 homomorphism")
	}
	bad := NewPartialMap().Extend(0, 2).Extend(1, 1)
	if IsPartialHomomorphism(a, b, bad) {
		t.Fatal("edge-reversing map accepted")
	}
	// Map with a gap: only node 0 and 2 mapped; edge (0,1),(1,2) not fully
	// in domain so anything goes.
	gap := NewPartialMap().Extend(0, 4).Extend(2, 0)
	if !IsPartialHomomorphism(a, b, gap) {
		t.Fatal("gapped map should vacuously be a homomorphism")
	}
}

func TestExtensionOK(t *testing.T) {
	a := pathStructure(3)
	b := pathStructure(5)
	m := NewPartialMap().Extend(0, 1)
	if !ExtensionOK(a, b, m, 1, 2, true) {
		t.Fatal("good extension rejected")
	}
	if ExtensionOK(a, b, m, 1, 3, true) {
		t.Fatal("edge-breaking extension accepted")
	}
	if ExtensionOK(a, b, m, 1, 1, true) {
		t.Fatal("injectivity violation accepted")
	}
	// Non-injective mode: 1->1 still must satisfy edges: edge (0,1) in A
	// would map to (1,1), which is not an edge of the path — reject.
	if ExtensionOK(a, b, m, 1, 1, false) {
		t.Fatal("non-injective mode must still check edges")
	}
	// Re-adding the same pair is OK; conflicting pair is not.
	if !ExtensionOK(a, b, m, 0, 1, true) {
		t.Fatal("identical re-extension rejected")
	}
	if ExtensionOK(a, b, m, 0, 2, true) {
		t.Fatal("conflicting re-extension accepted")
	}
}

func TestConstantsMachinery(t *testing.T) {
	g := graph.DirectedPath(3)
	a := FromGraph(g, []string{"s", "t"}, []int{0, 2})
	b := FromGraph(graph.DirectedPath(4), []string{"s", "t"}, []int{0, 3})
	if !ConstantMapOK(a, b) {
		t.Fatal("constant map should be fine")
	}
	m := ConstantMap(a, b)
	if m.Len() != 2 {
		t.Fatalf("constant map size = %d", m.Len())
	}
	if !RespectsConstants(a, b, m) {
		t.Fatal("constant map must respect constants")
	}
	if RespectsConstants(a, b, NewPartialMap()) {
		t.Fatal("empty map cannot respect constants")
	}
	// Conflicting: A's two constants coincide, B's do not.
	a2 := FromGraph(g, []string{"s", "t"}, []int{0, 0})
	if ConstantMapOK(a2, b) {
		t.Fatal("coinciding constants vs distinct must conflict")
	}
	// And the injective-collapse direction.
	b2 := FromGraph(graph.DirectedPath(4), []string{"s", "t"}, []int{0, 0})
	if ConstantMapOK(a, b2) {
		t.Fatal("distinct constants collapsing in B must conflict")
	}
}

func TestTotalHomomorphismExists(t *testing.T) {
	a := pathStructure(3)
	b := pathStructure(5)
	if !TotalHomomorphismExists(a, b, true) {
		t.Fatal("short path embeds in long path")
	}
	if TotalHomomorphismExists(b, a, true) {
		t.Fatal("long path cannot 1-1 embed in short path")
	}
	// Non-injective: path of length 4 maps homomorphically onto a cycle.
	c := FromGraph(graph.DirectedCycle(3), nil, nil)
	if !TotalHomomorphismExists(b, c, false) {
		t.Fatal("path wraps around cycle homomorphically")
	}
	if TotalHomomorphismExists(b, c, true) {
		t.Fatal("5-node path cannot embed 1-1 into 3-cycle")
	}
}

func TestTotalHomomorphismWithConstants(t *testing.T) {
	// s,t pinned: 2-path into 3-path with matching endpoints impossible,
	// because the images are forced and the middle cannot stretch.
	a := FromGraph(graph.DirectedPath(3), []string{"s", "t"}, []int{0, 2})
	b := FromGraph(graph.DirectedPath(4), []string{"s", "t"}, []int{0, 3})
	if TotalHomomorphismExists(a, b, true) {
		t.Fatal("length-2 path cannot map onto length-3 path with pinned ends")
	}
	b2 := FromGraph(graph.DirectedPath(3), []string{"s", "t"}, []int{0, 2})
	if !TotalHomomorphismExists(a, b2, true) {
		t.Fatal("identity embedding exists")
	}
}

func TestGraphBridgeRoundTrip(t *testing.T) {
	g := graph.DirectedCycle(4)
	s := FromGraph(g, []string{"r"}, []int{2})
	if s.N != 4 || s.Rel("E").Size() != 4 {
		t.Fatalf("bridge shape wrong: %v", s)
	}
	if s.Constant("r") != 2 {
		t.Fatal("constant lost")
	}
	back := ToGraph(s)
	if !back.Equal(g) {
		t.Fatal("round trip changed graph")
	}
}

func TestStructureString(t *testing.T) {
	s := FromGraph(graph.DirectedPath(2), []string{"s"}, []int{0})
	str := s.String()
	if str == "" {
		t.Fatal("empty String()")
	}
}
