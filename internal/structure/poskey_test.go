package structure

import (
	"math/rand"
	"testing"
)

// randPartial builds a random partial map a -> b over the given universes.
func randPartial(rng *rand.Rand, aN, bN, maxPairs int) PartialMap {
	m := NewPartialMap()
	n := rng.Intn(maxPairs + 1)
	perm := rng.Perm(aN)
	for i := 0; i < n && i < aN; i++ {
		m = m.Extend(perm[i], rng.Intn(bN))
	}
	return m
}

func TestPosCoderInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []struct{ aN, bN, maxPairs int }{
		{4, 4, 3},   // packed, tiny
		{16, 18, 5}, // packed, medium
		{300, 7, 4}, // packed, asymmetric widths
		{50, 50, 9}, // spill: 9*(6+6)+4 > 64
	} {
		c := NewPosCoder(cfg.aN, cfg.bN, cfg.maxPairs)
		seen := map[PosKey][]int{} // key -> flattened pairs
		for trial := 0; trial < 4000; trial++ {
			m := randPartial(rng, cfg.aN, cfg.bN, cfg.maxPairs)
			var flat []int
			for i := 0; i < m.Len(); i++ {
				a, b := m.At(i)
				flat = append(flat, a, b)
			}
			k := c.Key(m)
			if old, ok := seen[k]; ok {
				if len(old) != len(flat) {
					t.Fatalf("cfg %+v: key collision between %v and %v", cfg, old, flat)
				}
				for i := range old {
					if old[i] != flat[i] {
						t.Fatalf("cfg %+v: key collision between %v and %v", cfg, old, flat)
					}
				}
			} else {
				seen[k] = flat
			}
		}
	}
}

func TestPosCoderExtendWithoutAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, cfg := range []struct{ aN, bN, maxPairs int }{
		{5, 6, 4},
		{40, 40, 10}, // spill mode
	} {
		c := NewPosCoder(cfg.aN, cfg.bN, cfg.maxPairs)
		for trial := 0; trial < 2000; trial++ {
			m := randPartial(rng, cfg.aN, cfg.bN, cfg.maxPairs-1)
			// KeyExtend must agree with materializing the extension.
			a := rng.Intn(cfg.aN)
			if _, ok := m.Lookup(a); !ok {
				b := rng.Intn(cfg.bN)
				if got, want := c.KeyExtend(m, a, b), c.Key(m.Extend(a, b)); got != want {
					t.Fatalf("cfg %+v: KeyExtend(%v,%d,%d) = %v, want %v", cfg, m.Pairs(), a, b, got, want)
				}
			}
			// KeyWithout must agree with materializing the removal.
			if m.Len() > 0 {
				i := rng.Intn(m.Len())
				ai, _ := m.At(i)
				if got, want := c.KeyWithout(m, i), c.Key(m.Remove(ai)); got != want {
					t.Fatalf("cfg %+v: KeyWithout(%v,%d) = %v, want %v", cfg, m.Pairs(), i, got, want)
				}
			}
		}
	}
}

func TestPosCoderPackedModeSelection(t *testing.T) {
	if !NewPosCoder(16, 16, 7).Packed() {
		t.Fatal("7 pairs of 4+4 bits plus count must pack")
	}
	if NewPosCoder(1<<20, 1<<20, 3).Packed() {
		t.Fatal("3 pairs of 20+20 bits cannot pack")
	}
	if !NewPosCoder(1, 1, 1).Packed() {
		t.Fatal("degenerate universes must pack")
	}
}
