package flow

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestMaxDisjointPathsParallel(t *testing.T) {
	// k internally node-disjoint 2-edge paths from s to t.
	for k := 1; k <= 4; k++ {
		g := graph.New(2 + k)
		s, sink := 0, 1
		for i := 0; i < k; i++ {
			g.AddEdge(s, 2+i)
			g.AddEdge(2+i, sink)
		}
		if got := MaxDisjointPaths(g, s, sink); got != k {
			t.Fatalf("k=%d: MaxDisjointPaths = %d", k, got)
		}
	}
}

func TestMaxDisjointPathsBottleneck(t *testing.T) {
	// Two branches that both must cross one middle node.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(3, 5)
	g.AddEdge(4, 9) // extend targets to a common sink
	g.AddEdge(5, 9)
	if got := MaxDisjointPaths(g, 0, 9); got != 1 {
		t.Fatalf("bottleneck flow = %d, want 1", got)
	}
}

func TestMaxDisjointPathsDirectEdge(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if got := MaxDisjointPaths(g, 0, 2); got != 2 {
		t.Fatalf("flow = %d, want 2 (direct edge plus detour)", got)
	}
}

func TestMaxDisjointPathsNone(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(1, 0) // wrong direction
	if got := MaxDisjointPaths(g, 0, 1); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
}

func TestHasKDisjointPaths(t *testing.T) {
	g := graph.Grid(3, 3)
	// Corner to corner of a 3x3 grid: exactly 2 node-disjoint routes.
	if MaxDisjointPaths(g, 0, 8) != 2 {
		t.Fatal("grid corner flow should be 2")
	}
	if !HasKDisjointPaths(g, 0, 8, 2) {
		t.Fatal("HasK(2) should hold")
	}
	if HasKDisjointPaths(g, 0, 8, 3) {
		t.Fatal("HasK(3) should fail")
	}
	if !HasKDisjointPaths(g, 0, 8, 0) {
		t.Fatal("HasK(0) trivially true")
	}
}

func TestMinVertexCutMenger(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := graph.Random(9, 0.25, rng)
		s, tt := 0, 8
		if g.HasEdge(s, tt) {
			g.RemoveEdge(s, tt)
		}
		flowVal := MaxDisjointPaths(g, s, tt)
		cut := MinVertexCut(g, s, tt)
		if len(cut) != flowVal {
			t.Fatalf("trial %d: cut size %d != flow %d", trial, len(cut), flowVal)
		}
		// Removing the cut must disconnect t from s.
		forbidden := map[int]bool{}
		for _, v := range cut {
			forbidden[v] = true
		}
		if g.ReachableAvoiding(s, tt, forbidden) && flowVal > 0 {
			t.Fatalf("trial %d: cut does not separate", trial)
		}
		if flowVal == 0 && g.Reachable(s, tt) {
			t.Fatalf("trial %d: zero flow but reachable", trial)
		}
	}
}

func TestMinVertexCutPanicsOnDirectEdge(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinVertexCut(g, 0, 1)
}

func TestFlowAgreesWithBruteForce(t *testing.T) {
	// Menger cross-check: flow value vs brute-force search for k fully
	// disjoint s->t paths realized through k copies of (s,t) endpoints is
	// awkward; instead verify flow >= k implies brute-force existence of k
	// paths sharing only s,t by constructing them via successive shortest
	// augmentation — here we settle for the weaker sanity check that
	// flow = 0 iff not reachable, and flow >= 1 iff reachable.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := graph.Random(8, 0.2, rng)
		f := MaxDisjointPaths(g, 0, 7)
		reach := g.Reachable(0, 7)
		if (f >= 1) != reach {
			t.Fatalf("trial %d: flow %d vs reachable %v", trial, f, reach)
		}
	}
}

func TestFanOutCount(t *testing.T) {
	// Star: s with direct edges to 3 targets.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if got := FanOutCount(g, 0, []int{1, 2, 3}); got != 3 {
		t.Fatalf("star fan-out = %d, want 3", got)
	}
	// Funnel: all targets behind a single cut node.
	h := graph.New(5)
	h.AddEdge(0, 4)
	h.AddEdge(4, 1)
	h.AddEdge(4, 2)
	h.AddEdge(4, 3)
	if got := FanOutCount(h, 0, []int{1, 2, 3}); got != 1 {
		t.Fatalf("funnel fan-out = %d, want 1", got)
	}
}

func TestFanOutTargetsBlockEachOther(t *testing.T) {
	// Reaching t2 requires passing through t1: at most one of the two
	// paths can be routed disjointly.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if got := FanOutCount(g, 0, []int{1, 2}); got != 1 {
		t.Fatalf("fan-out through target = %d, want 1", got)
	}
}

func TestFanInCount(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	g.AddEdge(3, 0)
	if got := FanInCount(g, 0, []int{1, 2, 3}); got != 3 {
		t.Fatalf("fan-in = %d, want 3", got)
	}
}

func TestFanOutEqualsDisjointBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g := graph.Random(8, 0.25, rng)
		s := 0
		targets := []int{5, 6, 7}
		fullFan := FanOutCount(g, s, targets) == len(targets)
		// Brute-force DisjointSimplePaths treats every node, including s,
		// as usable once, so it cannot route two paths out of the same
		// source; compare against a split-source construction instead.
		gg := g.Clone()
		s1 := gg.AddNode()
		s2 := gg.AddNode()
		s3 := gg.AddNode()
		for _, y := range g.Out(s) {
			gg.AddEdge(s1, y)
			gg.AddEdge(s2, y)
			gg.AddEdge(s3, y)
		}
		brute := gg.DisjointSimplePaths([]int{s1, s2, s3}, targets)
		if fullFan != brute {
			t.Fatalf("trial %d: flow says %v, brute force says %v", trial, fullFan, brute)
		}
	}
}
