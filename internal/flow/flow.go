// Package flow implements unit-node-capacity maximum flow on directed
// graphs, which by Menger's theorem (equivalently the Max-Flow Min-Cut
// Theorem the paper cites from [Bol79]) computes the maximum number of
// internally node-disjoint paths between two nodes. Theorem 6.1 reduces
// H-subgraph homeomorphism for patterns in the class C to exactly this
// question; this package is the executable form of that oracle.
//
// The construction is the classic vertex split: every node v becomes an arc
// v_in -> v_out with capacity 1 (infinite for the designated terminals),
// and every edge (u,v) becomes an arc u_out -> v_in with capacity 1.
// Max flow then equals the maximum number of paths pairwise sharing no
// internal node, and a minimum cut yields the Menger separator.
package flow

import (
	"repro/internal/graph"
)

const inf = int(1) << 30

// network is a unit-capacity flow network with adjacency-list residual arcs.
type network struct {
	head []int // arc target
	cap  []int // residual capacity
	next []int // next arc index in the source's list
	adj  []int // first arc index per node, -1 terminated
}

func newNetwork(n int) *network {
	adj := make([]int, n)
	for i := range adj {
		adj[i] = -1
	}
	return &network{adj: adj}
}

func (nw *network) addArc(u, v, c int) {
	// forward arc
	nw.head = append(nw.head, v)
	nw.cap = append(nw.cap, c)
	nw.next = append(nw.next, nw.adj[u])
	nw.adj[u] = len(nw.head) - 1
	// residual arc
	nw.head = append(nw.head, u)
	nw.cap = append(nw.cap, 0)
	nw.next = append(nw.next, nw.adj[v])
	nw.adj[v] = len(nw.head) - 1
}

// maxFlow runs Edmonds–Karp (BFS augmenting paths) from s to t and returns
// the flow value, capped at limit augmentations when limit > 0 (callers
// that only need "is flow >= k" pass limit = k).
func (nw *network) maxFlow(s, t, limit int) int {
	n := len(nw.adj)
	total := 0
	prevArc := make([]int, n)
	for {
		if limit > 0 && total >= limit {
			return total
		}
		for i := range prevArc {
			prevArc[i] = -1
		}
		prevArc[s] = -2
		queue := []int{s}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for a := nw.adj[u]; a != -1; a = nw.next[a] {
				v := nw.head[a]
				if nw.cap[a] > 0 && prevArc[v] == -1 {
					prevArc[v] = a
					if v == t {
						found = true
						break
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			return total
		}
		// All capacities are 0/1/inf, so each augmenting path carries 1.
		for v := t; v != s; {
			a := prevArc[v]
			nw.cap[a]--
			nw.cap[a^1]++
			v = nw.head[a^1]
		}
		total++
	}
}

// split builds the vertex-split network for g. Node v of g becomes
// v_in = 2v and v_out = 2v+1. Nodes listed in uncapped get infinite
// internal capacity (the flow terminals). Edge arcs get capacity edgeCap:
// 1 for plain flow computation, inf when a vertex-only min cut is wanted
// (then the cut can cross node arcs only).
func split(g *graph.Graph, uncapped map[int]bool, edgeCap int) *network {
	nw := newNetwork(2 * g.N())
	for v := 0; v < g.N(); v++ {
		c := 1
		if uncapped[v] {
			c = inf
		}
		nw.addArc(2*v, 2*v+1, c)
	}
	for _, e := range g.Edges() {
		nw.addArc(2*e[0]+1, 2*e[1], edgeCap)
	}
	return nw
}

// MaxDisjointPaths returns the maximum number of simple paths from s to t
// in g that pairwise share no node other than s and t. s and t must be
// distinct; the count includes the direct edge (s,t) if present.
func MaxDisjointPaths(g *graph.Graph, s, t int) int {
	if s == t {
		panic("flow: MaxDisjointPaths requires distinct endpoints")
	}
	nw := split(g, map[int]bool{s: true, t: true}, 1)
	return nw.maxFlow(2*s+1, 2*t, 0)
}

// HasKDisjointPaths reports whether there are at least k paths from s to t
// pairwise sharing no node other than s and t. It stops augmenting at k.
func HasKDisjointPaths(g *graph.Graph, s, t, k int) bool {
	if k <= 0 {
		return true
	}
	if s == t {
		panic("flow: HasKDisjointPaths requires distinct endpoints")
	}
	nw := split(g, map[int]bool{s: true, t: true}, 1)
	return nw.maxFlow(2*s+1, 2*t, k) >= k
}

// MinVertexCut returns a minimum set of nodes (excluding s and t) whose
// removal disconnects t from s, assuming no direct edge (s,t): by Menger's
// theorem its size equals MaxDisjointPaths. If the edge (s,t) exists the
// cut is not defined; the function panics.
func MinVertexCut(g *graph.Graph, s, t int) []int {
	if g.HasEdge(s, t) {
		panic("flow: MinVertexCut undefined with a direct (s,t) edge")
	}
	nw := split(g, map[int]bool{s: true, t: true}, inf)
	nw.maxFlow(2*s+1, 2*t, 0)
	// Residual reachability from s_out.
	n := len(nw.adj)
	seen := make([]bool, n)
	seen[2*s+1] = true
	queue := []int{2*s + 1}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for a := nw.adj[u]; a != -1; a = nw.next[a] {
			v := nw.head[a]
			if nw.cap[a] > 0 && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	var cut []int
	for v := 0; v < g.N(); v++ {
		if v == s || v == t {
			continue
		}
		if seen[2*v] && !seen[2*v+1] {
			cut = append(cut, v)
		}
	}
	return cut
}

// FanOutCount returns the maximum number of node-disjoint paths from s to
// the distinct targets t_1..t_k simultaneously — the flow question Theorem
// 6.1 reduces the H-subgraph homeomorphism query to when the root of H is
// the tail of every edge. Disjointness here is full: the paths may share no
// node except s itself. The value equals the max flow from s to a super-sink
// attached to the targets with unit arcs, so it is at most k; the query
// "does H embed" is FanOutCount == k combined with per-target checks done
// by the homeo package.
func FanOutCount(g *graph.Graph, s int, targets []int) int {
	// Build split network, then add a super sink.
	uncapped := map[int]bool{s: true}
	nw := split(g, uncapped, 1)
	sink := nw.extraNode()
	for _, t := range targets {
		// Leave each target's own in->out capacity at 1 so two paths
		// cannot both end at (pass through) the same target, then tap the
		// target after its internal arc.
		nw.addArc(2*t+1, sink, 1)
	}
	return nw.maxFlow(2*s+1, sink, 0)
}

// FanInCount is the mirror image of FanOutCount: the maximum number of
// node-disjoint paths from the distinct sources into t.
func FanInCount(g *graph.Graph, t int, sources []int) int {
	return FanOutCount(g.Reverse(), t, sources)
}

// extraNode appends a fresh node to the network and returns its id.
func (nw *network) extraNode() int {
	nw.adj = append(nw.adj, -1)
	return len(nw.adj) - 1
}
