package flow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestQuickFlowMonotoneInEdges(t *testing.T) {
	prop := func(seed int64, e uint16) bool {
		g := graph.Random(8, 0.2, rand.New(rand.NewSource(seed)))
		before := MaxDisjointPaths(g, 0, 7)
		u := int(e) % 8
		v := int(e>>3) % 8
		if u != v {
			g.AddEdge(u, v)
		}
		return MaxDisjointPaths(g, 0, 7) >= before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFlowBoundedByDegrees(t *testing.T) {
	prop := func(seed int64) bool {
		g := graph.Random(8, 0.3, rand.New(rand.NewSource(seed)))
		f := MaxDisjointPaths(g, 0, 7)
		return f <= g.OutDegree(0) && f <= g.InDegree(7)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMengerDuality(t *testing.T) {
	prop := func(seed int64) bool {
		g := graph.Random(8, 0.25, rand.New(rand.NewSource(seed)))
		g.RemoveEdge(0, 7)
		f := MaxDisjointPaths(g, 0, 7)
		cut := MinVertexCut(g, 0, 7)
		if len(cut) != f {
			return false
		}
		forbidden := map[int]bool{}
		for _, v := range cut {
			forbidden[v] = true
		}
		return !g.ReachableAvoiding(0, 7, forbidden)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFanOutBoundedByPairwise(t *testing.T) {
	// The simultaneous fan-out never exceeds any pairwise disjoint-path
	// count, and never exceeds the out-degree of the source.
	prop := func(seed int64) bool {
		g := graph.Random(8, 0.3, rand.New(rand.NewSource(seed)))
		targets := []int{5, 6, 7}
		fan := FanOutCount(g, 0, targets)
		if fan > g.OutDegree(0) {
			return false
		}
		return fan <= len(targets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFanInMirrorsFanOut(t *testing.T) {
	prop := func(seed int64) bool {
		g := graph.Random(8, 0.3, rand.New(rand.NewSource(seed)))
		r := g.Reverse()
		return FanOutCount(g, 0, []int{5, 6, 7}) == FanInCount(r, 0, []int{5, 6, 7})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
