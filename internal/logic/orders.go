package logic

import (
	"repro/internal/structure"
)

// Example 3.3: on total orders, the Immerman–Kozen trick expresses
// "there are at least n elements" with only two variables, by bouncing x
// and y past each other:
//
//	τ_4 ≡ ∃x∃y(x<y ∧ ∃x(y<x ∧ ∃y(x<y)))
//
// Consequently "exactly n elements" and any cardinality property — even
// non-recursive ones — are expressible in L²_{∞ω} on total orders.

// OrderVocabulary is the vocabulary of strict total orders: one binary
// relation Lt.
func OrderVocabulary() *structure.Vocabulary {
	return structure.NewVocabulary([]structure.RelSymbol{{Name: "Lt", Arity: 2}}, nil)
}

// TotalOrder returns the strict total order on n elements as a structure.
func TotalOrder(n int) *structure.Structure {
	s := structure.New(OrderVocabulary(), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.AddFact("Lt", i, j)
		}
	}
	return s
}

// AtLeastFormula returns τ_n: "there are at least n elements", as a
// two-variable existential positive sentence over total orders.
func AtLeastFormula(n int) Formula {
	if n <= 0 {
		return True{}
	}
	if n == 1 {
		// ∃x (x = x)
		return &Exists{Var: "x", Sub: Eq{L: V("x"), R: V("x")}}
	}
	// Innermost chain: alternate x<y, y<x, rebinding the older variable.
	// Build from the inside out: the chain has n-1 comparisons.
	vars := []string{"x", "y"}
	var f Formula = Atom{Pred: "Lt", Args: []Term{V(vars[(n-2)%2]), V(vars[(n-1)%2])}}
	for i := n - 2; i >= 1; i-- {
		f = &And{Subs: []Formula{
			Atom{Pred: "Lt", Args: []Term{V(vars[(i-1)%2]), V(vars[i%2])}},
			&Exists{Var: vars[(i+1)%2], Sub: f},
		}}
	}
	return &Exists{Var: "x", Sub: &Exists{Var: "y", Sub: f}}
}

// CardinalityInFormula returns the Example 3.3 sentence "the number of
// elements is a member of P" over total orders, as the disjunction
// ⋁_{n∈P} (τ_n ∧ ¬τ_{n+1}). Since L^ω is negation-free and our formula
// AST has no negation, the "exactly n" part is approximated here by the
// evaluation helper CardinalityIn instead; the positive τ_n sentences are
// still genuine L² objects and are what this constructor exposes.
func CardinalityInFormula(lower []int) Formula {
	var subs []Formula
	for _, n := range lower {
		subs = append(subs, AtLeastFormula(n))
	}
	return &Or{Subs: subs}
}

// CardinalityIn evaluates the full Example 3.3 query "|universe| ∈ P" on a
// total order by combining τ_n and τ_{n+1} (the ¬τ_{n+1} conjunct lives
// outside the negation-free fragment, so it is evaluated directly).
func CardinalityIn(s *structure.Structure, member func(int) bool) bool {
	// Find |universe| via the least n with τ_n true and τ_{n+1} false —
	// which of course equals s.N; the point is doing it through the
	// two-variable sentences.
	n := 0
	for AtLeast(s, n+1) {
		n++
	}
	return member(n)
}

// AtLeast evaluates τ_n on a structure.
func AtLeast(s *structure.Structure, n int) bool {
	return Eval(s, AtLeastFormula(n), map[string]int{})
}
