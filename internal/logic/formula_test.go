package logic

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/structure"
)

func graphStruct(g *graph.Graph) *structure.Structure {
	return structure.FromGraph(g, nil, nil)
}

func TestEvalAtoms(t *testing.T) {
	s := graphStruct(graph.DirectedPath(3))
	f := Atom{Pred: "E", Args: []Term{V("x"), V("y")}}
	if !Eval(s, f, map[string]int{"x": 0, "y": 1}) {
		t.Fatal("edge (0,1) should hold")
	}
	if Eval(s, f, map[string]int{"x": 1, "y": 0}) {
		t.Fatal("edge (1,0) should not hold")
	}
	if !Eval(s, Atom{Pred: "E", Args: []Term{C(1), C(2)}}, nil) {
		t.Fatal("constant atom failed")
	}
}

func TestEvalConnectives(t *testing.T) {
	s := graphStruct(graph.DirectedPath(3))
	env := map[string]int{"x": 0, "y": 2}
	if Eval(s, Eq{L: V("x"), R: V("y")}, env) {
		t.Fatal("0 = 2 false")
	}
	if !Eval(s, Neq{L: V("x"), R: V("y")}, env) {
		t.Fatal("0 != 2 true")
	}
	tAnd := &And{Subs: []Formula{True{}, Neq{L: V("x"), R: V("y")}}}
	if !Eval(s, tAnd, env) {
		t.Fatal("conjunction wrong")
	}
	fAnd := &And{Subs: []Formula{False{}, True{}}}
	if Eval(s, fAnd, env) {
		t.Fatal("conjunction with false wrong")
	}
	or := &Or{Subs: []Formula{False{}, Eq{L: V("x"), R: C(0)}}}
	if !Eval(s, or, env) {
		t.Fatal("disjunction wrong")
	}
	if Eval(s, &Or{Subs: nil}, env) {
		t.Fatal("empty disjunction must be false")
	}
	if !Eval(s, &And{Subs: nil}, env) {
		t.Fatal("empty conjunction must be true")
	}
}

func TestEvalExists(t *testing.T) {
	s := graphStruct(graph.DirectedPath(3))
	// ∃z (E(x,z) ∧ E(z,y)) — a path of length 2.
	f := &Exists{Var: "z", Sub: &And{Subs: []Formula{
		Atom{Pred: "E", Args: []Term{V("x"), V("z")}},
		Atom{Pred: "E", Args: []Term{V("z"), V("y")}},
	}}}
	if !Eval(s, f, map[string]int{"x": 0, "y": 2}) {
		t.Fatal("length-2 path exists")
	}
	if Eval(s, f, map[string]int{"x": 0, "y": 1}) {
		t.Fatal("no length-2 path from 0 to 1")
	}
	// Environment must be restored after Exists.
	env := map[string]int{"x": 0, "y": 2, "z": 99}
	s2 := graphStruct(graph.DirectedPath(3))
	_ = s2
	Eval(s, f, env)
	if env["z"] != 99 {
		t.Fatal("Exists clobbered the environment")
	}
}

func TestPathLengthFormula(t *testing.T) {
	// p_n(x,y) holds iff there is a walk of length exactly n.
	s := graphStruct(graph.DirectedPath(5))
	for n := 1; n <= 4; n++ {
		f := PathLengthFormula(n)
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				want := y-x == n
				got := Eval(s, f, map[string]int{"x": x, "y": y})
				if got != want {
					t.Fatalf("p_%d(%d,%d) = %v, want %v", n, x, y, got, want)
				}
			}
		}
	}
}

func TestPathLengthFormulaUsesThreeVariables(t *testing.T) {
	// Example 3.4: p_n needs only the variables x, y, z for every n.
	for n := 1; n <= 6; n++ {
		vars := Variables(PathLengthFormula(n))
		if len(vars) > 3 {
			t.Fatalf("p_%d uses %d variables: %v", n, len(vars), vars)
		}
	}
}

func TestPathLengthFormulaOnCycle(t *testing.T) {
	// On a 3-cycle, p_n(x,x) holds iff 3 divides n.
	s := graphStruct(graph.DirectedCycle(3))
	for n := 1; n <= 6; n++ {
		got := Eval(s, PathLengthFormula(n), map[string]int{"x": 0, "y": 0})
		want := n%3 == 0
		if got != want {
			t.Fatalf("cycle: p_%d(0,0) = %v, want %v", n, got, want)
		}
	}
}

func TestPathLengthInFormula(t *testing.T) {
	// "Even-length walk from x to y" on a path: holds iff y-x even & >= 2...
	// (lengths enumerated explicitly up to 4).
	s := graphStruct(graph.DirectedPath(6))
	f := PathLengthInFormula([]int{2, 4})
	if vars := Variables(f); len(vars) > 3 {
		t.Fatalf("disjunction left L^3: %v", vars)
	}
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			want := y-x == 2 || y-x == 4
			if got := Eval(s, f, map[string]int{"x": x, "y": y}); got != want {
				t.Fatalf("(%d,%d): got %v want %v", x, y, got, want)
			}
		}
	}
}

func TestVariablesAndFreeVars(t *testing.T) {
	f := &Exists{Var: "z", Sub: &And{Subs: []Formula{
		Atom{Pred: "E", Args: []Term{V("x"), V("z")}},
		Neq{L: V("z"), R: V("w")},
	}}}
	vars := Variables(f)
	if len(vars) != 3 || vars[0] != "w" || vars[1] != "x" || vars[2] != "z" {
		t.Fatalf("Variables = %v", vars)
	}
	free := FreeVars(f)
	if len(free) != 2 || free[0] != "w" || free[1] != "x" {
		t.Fatalf("FreeVars = %v", free)
	}
	// Rebinding: ∃x(x=z ∧ E(x,y)) frees z,y only.
	g := &Exists{Var: "x", Sub: &And{Subs: []Formula{
		Eq{L: V("x"), R: V("z")},
		Atom{Pred: "E", Args: []Term{V("x"), V("y")}},
	}}}
	free = FreeVars(g)
	if len(free) != 2 || free[0] != "y" || free[1] != "z" {
		t.Fatalf("FreeVars after rebinding = %v", free)
	}
}

func TestFragmentChecks(t *testing.T) {
	f := PathLengthFormula(3)
	if !IsExistentialPositive(f) {
		t.Fatal("p_3 is existential positive")
	}
	if UsesInequality(f) {
		t.Fatal("p_3 has no inequalities")
	}
	g := &And{Subs: []Formula{Neq{L: V("x"), R: V("y")}}}
	if !UsesInequality(g) {
		t.Fatal("inequality missed")
	}
}

func TestFormulaStrings(t *testing.T) {
	f := &Exists{Var: "z", Sub: &Or{Subs: []Formula{
		Atom{Pred: "E", Args: []Term{V("x"), V("z")}},
		Eq{L: V("z"), R: C(0)},
	}}}
	got := f.String()
	want := "Ez.(E(x,z) | z=0)"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if (False{}).String() != "false" || (True{}).String() != "true" {
		t.Fatal("constant rendering wrong")
	}
	if (&And{}).String() != "true" || (&Or{}).String() != "false" {
		t.Fatal("empty connective rendering wrong")
	}
}
