package logic

import (
	"fmt"

	"repro/internal/datalog"
)

// Translator performs the Theorem 3.6 translation from a Datalog(≠)
// program to the existential positive first-order stage formulas φ^n that
// define the stages Θ^n of the program's operator, using at most l + r
// distinct variables (l = variables of the operator formula, r = maximal
// IDB arity): every IDB atom S(t̄) inside φ is replaced by
//
//	∃y₁..y_r (y_i = t_i ∧ ∃w₁..w_r (w_i = y_i ∧ φ^{n-1}(w̄)))
//
// recycling the same y/w variable names at every substitution point.
// Stage formulas share subtrees, so building φ^n costs O(n) memory.
type Translator struct {
	Program *datalog.Program

	headVars []string             // w1..wr
	auxVars  []string             // y1..yr
	arity    map[string]int       // IDB arities
	operator map[string]Formula   // φ_P(w1..w_arity, IDBs)
	stages   map[string][]Formula // stages[pred][n] = φ^n, index 0 = False
	idbSet   map[string]bool
}

// NewTranslator validates the program and prepares the operator formulas.
func NewTranslator(p *datalog.Program) (*Translator, error) {
	if err := datalog.Validate(p); err != nil {
		return nil, err
	}
	t := &Translator{Program: p, idbSet: p.IDBs(), arity: map[string]int{}}
	maxR := 0
	for pred := range t.idbSet {
		t.arity[pred] = p.Arities()[pred]
		if t.arity[pred] > maxR {
			maxR = t.arity[pred]
		}
	}
	for i := 1; i <= maxR; i++ {
		t.headVars = append(t.headVars, fmt.Sprintf("w%d", i))
		t.auxVars = append(t.auxVars, fmt.Sprintf("y%d", i))
	}
	t.operator = map[string]Formula{}
	t.stages = map[string][]Formula{}
	for pred := range t.idbSet {
		op, err := t.operatorFormula(pred)
		if err != nil {
			return nil, err
		}
		t.operator[pred] = op
		t.stages[pred] = []Formula{False{}}
	}
	return t, nil
}

// HeadVars returns the canonical head variables w1..wr used by the stage
// formulas of the given IDB predicate.
func (t *Translator) HeadVars(pred string) []string {
	return t.headVars[:t.arity[pred]]
}

// Operator returns φ_P(w̄, S̄): the existential positive formula defining
// the program's operator for IDB P (IDB atoms left as atoms).
func (t *Translator) Operator(pred string) Formula { return t.operator[pred] }

// operatorFormula builds the disjunction over the rules with head pred.
// Rule variables clash-free renaming: every rule variable v becomes "r<i>.v"
// unless it is identified with a head variable; head argument positions
// bind t_i to w_i via equalities when the head argument is a constant or a
// repeated variable.
func (t *Translator) operatorFormula(pred string) (Formula, error) {
	var disj []Formula
	for ri, rule := range t.Program.Rules {
		if rule.Head.Pred != pred {
			continue
		}
		// Map each rule variable to a formula term. Head variables map to
		// w_i at their first head occurrence.
		rename := map[string]Term{}
		var conj []Formula
		for i, arg := range rule.Head.Args {
			w := V(t.headVars[i])
			if arg.IsVar() {
				if prev, ok := rename[arg.Var]; ok {
					conj = append(conj, Eq{L: w, R: prev})
				} else {
					rename[arg.Var] = w
				}
			} else {
				conj = append(conj, Eq{L: w, R: C(arg.Const)})
			}
		}
		// Remaining rule variables become ∃-quantified with rule-local
		// names.
		var exVars []string
		localTerm := func(dt datalog.Term) Term {
			if !dt.IsVar() {
				return C(dt.Const)
			}
			if tm, ok := rename[dt.Var]; ok {
				return tm
			}
			name := fmt.Sprintf("v%d_%s", ri, dt.Var)
			rename[dt.Var] = V(name)
			exVars = append(exVars, name)
			return V(name)
		}
		for _, item := range rule.Body {
			if item.Atom != nil {
				args := make([]Term, len(item.Atom.Args))
				for i, a := range item.Atom.Args {
					args[i] = localTerm(a)
				}
				conj = append(conj, Atom{Pred: item.Atom.Pred, Args: args})
			} else {
				c := item.Constraint
				l, rr := localTerm(c.Left), localTerm(c.Right)
				if c.Neq {
					conj = append(conj, Neq{L: l, R: rr})
				} else {
					conj = append(conj, Eq{L: l, R: rr})
				}
			}
		}
		var f Formula = &And{Subs: conj}
		for i := len(exVars) - 1; i >= 0; i-- {
			f = &Exists{Var: exVars[i], Sub: f}
		}
		disj = append(disj, f)
	}
	if len(disj) == 0 {
		return nil, fmt.Errorf("logic: IDB %s has no rules", pred)
	}
	return &Or{Subs: disj}, nil
}

// Stage returns φ^n for the IDB predicate (n >= 0; stage 0 is False).
// Stages are memoized and share structure.
func (t *Translator) Stage(pred string, n int) Formula {
	if !t.idbSet[pred] {
		panic("logic: not an IDB: " + pred)
	}
	for len(t.stages[pred]) <= n {
		// Build the next stage for every IDB simultaneously (the paper's
		// simultaneous induction for systems of operators).
		cur := len(t.stages[pred])
		for q := range t.idbSet {
			for len(t.stages[q]) <= cur {
				prev := map[string]Formula{}
				for q2 := range t.idbSet {
					prev[q2] = t.stages[q2][cur-1]
				}
				t.stages[q] = append(t.stages[q], t.substitute(t.operator[q], prev))
			}
		}
	}
	return t.stages[pred][n]
}

// substitute replaces every IDB atom P(t̄) in f by the variable-recycling
// gadget around prev[P].
func (t *Translator) substitute(f Formula, prev map[string]Formula) Formula {
	switch g := f.(type) {
	case Atom:
		if !t.idbSet[g.Pred] {
			return g
		}
		r := t.arity[g.Pred]
		// Innermost: w_i = y_i ∧ φ^{n-1}(w̄).
		inner := []Formula{}
		for i := 0; i < r; i++ {
			inner = append(inner, Eq{L: V(t.headVars[i]), R: V(t.auxVars[i])})
		}
		inner = append(inner, prev[g.Pred])
		var core Formula = &And{Subs: inner}
		for i := r - 1; i >= 0; i-- {
			core = &Exists{Var: t.headVars[i], Sub: core}
		}
		// Outer: y_i = t_i ∧ core.
		outer := []Formula{}
		for i := 0; i < r; i++ {
			outer = append(outer, Eq{L: V(t.auxVars[i]), R: g.Args[i]})
		}
		outer = append(outer, core)
		var full Formula = &And{Subs: outer}
		for i := r - 1; i >= 0; i-- {
			full = &Exists{Var: t.auxVars[i], Sub: full}
		}
		return full
	case Eq, Neq, False, True:
		return f
	case *And:
		subs := make([]Formula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = t.substitute(s, prev)
		}
		return &And{Subs: subs}
	case *Or:
		subs := make([]Formula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = t.substitute(s, prev)
		}
		return &Or{Subs: subs}
	case *Exists:
		return &Exists{Var: g.Var, Sub: t.substitute(g.Sub, prev)}
	default:
		panic(fmt.Sprintf("logic: unknown node %T", f))
	}
}

// VariableBound returns the Theorem 3.6 bound l + r on distinct variables:
// l counts the distinct variables of the operator formulas and r is the
// maximal IDB arity (for the auxiliary y variables).
func (t *Translator) VariableBound() int {
	seen := map[string]bool{}
	for _, op := range t.operator {
		for _, v := range Variables(op) {
			seen[v] = true
		}
	}
	return len(seen) + len(t.auxVars)
}
