package logic

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/graph"
	"repro/internal/structure"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestEvalPanicsOnUnboundVariable(t *testing.T) {
	s := structure.FromGraph(graph.DirectedPath(2), nil, nil)
	mustPanic(t, "unbound var", func() {
		Eval(s, Atom{Pred: "E", Args: []Term{V("x"), V("y")}}, map[string]int{"x": 0})
	})
}

func TestEvalPanicsOnUnknownRelation(t *testing.T) {
	s := structure.FromGraph(graph.DirectedPath(2), nil, nil)
	mustPanic(t, "unknown relation", func() {
		Eval(s, Atom{Pred: "R", Args: []Term{C(0)}}, nil)
	})
}

func TestPathLengthFormulaPanicsOnZero(t *testing.T) {
	mustPanic(t, "n=0", func() { PathLengthFormula(0) })
}

func TestStagePanicsOnNonIDB(t *testing.T) {
	tr, err := NewTranslator(datalog.TransitiveClosureProgram())
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "non-IDB", func() { tr.Stage("E", 1) })
}

func TestOperatorAccessor(t *testing.T) {
	tr, err := NewTranslator(datalog.TransitiveClosureProgram())
	if err != nil {
		t.Fatal(err)
	}
	op := tr.Operator("S")
	if op == nil {
		t.Fatal("operator missing")
	}
	// The operator formula mentions both E and the IDB S.
	text := op.String()
	if !containsAll(text, "E(", "S(") {
		t.Fatalf("operator formula looks wrong: %s", text)
	}
	if !IsExistentialPositive(op) {
		t.Fatal("operator formula must be existential positive")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestAtLeastEdgeCases(t *testing.T) {
	s := TotalOrder(3)
	if !AtLeast(s, 0) {
		t.Fatal("τ_0 is trivially true")
	}
	if !AtLeast(s, 1) {
		t.Fatal("τ_1 on a nonempty order")
	}
	empty := TotalOrder(0)
	if AtLeast(empty, 1) {
		t.Fatal("τ_1 on the empty order must fail")
	}
	if !AtLeast(empty, 0) {
		t.Fatal("τ_0 on the empty order is true")
	}
}

func TestUsesInequalitySharedSubtrees(t *testing.T) {
	// A shared subtree with an inequality must be found through either
	// parent, and the visited-set must not hide it.
	shared := &And{Subs: []Formula{Neq{L: V("x"), R: V("y")}}}
	f := &Or{Subs: []Formula{shared, shared}}
	if !UsesInequality(f) {
		t.Fatal("inequality in shared subtree missed")
	}
	clean := &Or{Subs: []Formula{&And{Subs: []Formula{True{}}}}}
	if UsesInequality(clean) {
		t.Fatal("phantom inequality")
	}
}
