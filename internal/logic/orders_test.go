package logic

import "testing"

func TestAtLeastFormulaSemantics(t *testing.T) {
	// τ_n holds on the m-element total order iff m >= n (Example 3.3).
	for m := 0; m <= 7; m++ {
		s := TotalOrder(m)
		for n := 0; n <= 8; n++ {
			got := AtLeast(s, n)
			want := m >= n
			if got != want {
				t.Fatalf("τ_%d on %d-order = %v, want %v", n, m, got, want)
			}
		}
	}
}

func TestAtLeastFormulaTwoVariables(t *testing.T) {
	// The Immerman–Kozen point: τ_n uses only the variables x and y.
	for n := 1; n <= 10; n++ {
		vars := Variables(AtLeastFormula(n))
		if len(vars) > 2 {
			t.Fatalf("τ_%d uses %d variables: %v", n, len(vars), vars)
		}
	}
}

func TestAtLeastFormulaIsExistentialPositive(t *testing.T) {
	for n := 1; n <= 6; n++ {
		if !IsExistentialPositive(AtLeastFormula(n)) {
			t.Fatalf("τ_%d left the fragment", n)
		}
	}
}

func TestCardinalityIn(t *testing.T) {
	even := func(n int) bool { return n%2 == 0 }
	for m := 0; m <= 8; m++ {
		s := TotalOrder(m)
		if got := CardinalityIn(s, even); got != even(m) {
			t.Fatalf("even-cardinality on %d-order = %v", m, got)
		}
	}
	// A non-recursive-looking property is just as expressible: membership
	// in an arbitrary set (Example 3.3's point about nonrecursive queries).
	weird := map[int]bool{0: true, 3: true, 7: true}
	for m := 0; m <= 8; m++ {
		s := TotalOrder(m)
		if got := CardinalityIn(s, func(n int) bool { return weird[n] }); got != weird[m] {
			t.Fatalf("weird-cardinality on %d-order = %v", m, got)
		}
	}
}

func TestCardinalityInFormulaLowerBounds(t *testing.T) {
	// ⋁ τ_n is the positive part: true iff |universe| >= min(P).
	f := CardinalityInFormula([]int{3, 5})
	for m := 0; m <= 6; m++ {
		got := Eval(TotalOrder(m), f, map[string]int{})
		want := m >= 3
		if got != want {
			t.Fatalf("disjunction on %d-order = %v, want %v", m, got, want)
		}
	}
	if vars := Variables(f); len(vars) > 2 {
		t.Fatalf("disjunction uses %v", vars)
	}
}

func TestTotalOrderShape(t *testing.T) {
	s := TotalOrder(4)
	if s.Rel("Lt").Size() != 6 {
		t.Fatalf("Lt has %d tuples, want 6", s.Rel("Lt").Size())
	}
	if !s.Rel("Lt").Has([]int{0, 3}) || s.Rel("Lt").Has([]int{3, 0}) {
		t.Fatal("order direction wrong")
	}
}
