package logic

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/graph"
	"repro/internal/structure"
)

// stageRelation evaluates φ^n over all r-tuples of the structure.
func stageRelation(t *testing.T, tr *Translator, pred string, n int, s *structure.Structure) map[string]bool {
	t.Helper()
	f := tr.Stage(pred, n)
	hv := tr.HeadVars(pred)
	out := map[string]bool{}
	var rec func(i int, env map[string]int, key string)
	rec = func(i int, env map[string]int, key string) {
		if i == len(hv) {
			if Eval(s, f, env) {
				out[key] = true
			}
			return
		}
		for x := 0; x < s.N; x++ {
			env[hv[i]] = x
			k := key
			if i > 0 {
				k += ","
			}
			rec(i+1, env, k+itoa(x))
			delete(env, hv[i])
		}
	}
	rec(0, map[string]int{}, "")
	return out
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b []byte
	for x > 0 {
		b = append([]byte{byte('0' + x%10)}, b...)
		x /= 10
	}
	return string(b)
}

func TestStageFormulasMatchEngineStages(t *testing.T) {
	// Theorem 3.6: φ^n defines Θ^n, for every stage n, uniformly.
	progs := map[string]*datalog.Program{
		"tc":       datalog.TransitiveClosureProgram(),
		"avoiding": datalog.AvoidingPathProgram(),
	}
	rng := rand.New(rand.NewSource(51))
	for name, p := range progs {
		tr, err := NewTranslator(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			g := graph.Random(5, 0.3, rng)
			db := datalog.FromGraph(g)
			s := structure.FromGraph(g, nil, nil)
			res, err := datalog.Eval(p, db, datalog.Options{SemiNaive: false, UseIndexes: true})
			if err != nil {
				t.Fatal(err)
			}
			pred := p.Goal
			for n := 0; n <= res.Rounds; n++ {
				got := stageRelation(t, tr, pred, n, s)
				// Engine stage n = tuples with Stage <= n.
				want := map[string]bool{}
				res.EachStage(pred, func(tup datalog.Tuple, st int) bool {
					if st <= n {
						key := ""
						for i, x := range tup {
							if i > 0 {
								key += ","
							}
							key += itoa(x)
						}
						want[key] = true
					}
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("%s trial %d stage %d: formula %d tuples, engine %d",
						name, trial, n, len(got), len(want))
				}
				for key := range want {
					if !got[key] {
						t.Fatalf("%s trial %d stage %d: missing %s", name, trial, n, key)
					}
				}
			}
		}
	}
}

func TestStageVariableCountConstant(t *testing.T) {
	// The point of Theorem 3.6: the variable count of φ^n does not grow
	// with n and respects the l + r bound.
	for _, p := range []*datalog.Program{
		datalog.TransitiveClosureProgram(),
		datalog.AvoidingPathProgram(),
		datalog.QklPrograms(2, 0),
	} {
		tr, err := NewTranslator(p)
		if err != nil {
			t.Fatal(err)
		}
		bound := tr.VariableBound()
		var atStage3 int
		for n := 1; n <= 6; n++ {
			vars := Variables(tr.Stage(p.Goal, n))
			if len(vars) > bound {
				t.Fatalf("goal %s stage %d: %d variables exceeds bound %d (%v)",
					p.Goal, n, len(vars), bound, vars)
			}
			if n == 3 {
				atStage3 = len(vars)
			}
			if n > 3 && len(vars) != atStage3 {
				t.Fatalf("variable count drifts with stage: %d vs %d", len(vars), atStage3)
			}
		}
	}
}

func TestStagesAreMonotone(t *testing.T) {
	// φ^n ⊨ φ^{n+1} pointwise on every structure (stages grow).
	p := datalog.TransitiveClosureProgram()
	tr, err := NewTranslator(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(5, 0.3, rng)
		s := structure.FromGraph(g, nil, nil)
		prev := map[string]bool{}
		for n := 0; n <= 5; n++ {
			cur := stageRelation(t, tr, "S", n, s)
			for key := range prev {
				if !cur[key] {
					t.Fatalf("stage %d lost tuple %s", n, key)
				}
			}
			prev = cur
		}
	}
}

func TestStageZeroIsEmpty(t *testing.T) {
	p := datalog.TransitiveClosureProgram()
	tr, err := NewTranslator(p)
	if err != nil {
		t.Fatal(err)
	}
	s := structure.FromGraph(graph.Complete(4), nil, nil)
	if got := stageRelation(t, tr, "S", 0, s); len(got) != 0 {
		t.Fatalf("stage 0 nonempty: %v", got)
	}
}

func TestStagesExistentialPositive(t *testing.T) {
	p := datalog.AvoidingPathProgram()
	tr, err := NewTranslator(p)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 4; n++ {
		f := tr.Stage("T", n)
		if !IsExistentialPositive(f) {
			t.Fatalf("stage %d left the fragment", n)
		}
	}
	// Datalog (pure) programs yield inequality-free stages; Datalog(≠)
	// programs do not (second half of Theorem 3.6).
	if !UsesInequality(tr.Stage("T", 2)) {
		t.Fatal("avoiding-path stages must use inequalities")
	}
	tc, err := NewTranslator(datalog.TransitiveClosureProgram())
	if err != nil {
		t.Fatal(err)
	}
	if UsesInequality(tc.Stage("S", 3)) {
		t.Fatal("pure Datalog stages must be inequality-free")
	}
}

func TestTranslatorMutualRecursion(t *testing.T) {
	p := datalog.MustParse(`
		Odd(x, y) :- E(x, y).
		Odd(x, y) :- E(x, z), Even(z, y).
		Even(x, y) :- E(x, z), Odd(z, y).
		goal Even.
	`)
	tr, err := NewTranslator(p)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.DirectedPath(5)
	s := structure.FromGraph(g, nil, nil)
	db := datalog.FromGraph(g)
	res, err := datalog.Eval(p, db, datalog.Options{SemiNaive: false, UseIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	n := res.Rounds
	for _, pred := range []string{"Odd", "Even"} {
		got := stageRelation(t, tr, pred, n, s)
		if len(got) != res.IDB[pred].Size() {
			t.Fatalf("%s: formula %d vs engine %d tuples", pred, len(got), res.IDB[pred].Size())
		}
	}
}

func TestTranslatorConstantHeads(t *testing.T) {
	p := datalog.MustParse(`
		D(3, 4).
		D(x, y) :- E(x, z), D(z, y).
	`)
	tr, err := NewTranslator(p)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(6)
	g.AddEdge(1, 3)
	g.AddEdge(0, 1)
	s := structure.FromGraph(g, nil, nil)
	got := stageRelation(t, tr, "D", 3, s)
	for _, want := range []string{"3,4", "1,4", "0,4"} {
		if !got[want] {
			t.Fatalf("missing %s in %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestTranslatorRepeatedHeadVariable(t *testing.T) {
	// P(x,x) :- E(x,y): head repeats a variable, handled via w2 = w1.
	p := datalog.MustParse(`P(x, x) :- E(x, y).`)
	tr, err := NewTranslator(p)
	if err != nil {
		t.Fatal(err)
	}
	s := structure.FromGraph(graph.DirectedPath(3), nil, nil)
	got := stageRelation(t, tr, "P", 1, s)
	if len(got) != 2 || !got["0,0"] || !got["1,1"] {
		t.Fatalf("got %v", got)
	}
}

func TestTranslatorRejectsInvalidPrograms(t *testing.T) {
	if _, err := NewTranslator(&datalog.Program{Goal: "S"}); err == nil {
		t.Fatal("empty program accepted")
	}
}
