// Package logic implements the existential negation-free infinitary
// fragment L^k of Section 3 — or rather its finite-stage skeleton: on a
// fixed finite structure every Datalog(≠) fixpoint is reached at a finite
// stage, so the infinitary disjunction ⋁_n φ^n of Theorem 3.6 is captured
// by its finite prefixes. The package provides the formula AST
// (atoms, =, ≠, ∧, ∨, ∃), evaluation on finite structures, distinct
// variable counting, and the Theorem 3.6 translation from a Datalog(≠)
// program to its stage formulas φ^n with at most l + r distinct variables.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/structure"
)

// Term is a variable or a constant universe element.
type Term struct {
	Var   string
	Const int
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant-element term.
func C(v int) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return fmt.Sprintf("%d", t.Const)
}

// Formula is a node of an existential positive formula. Formula trees are
// immutable; stage construction shares subtrees, so the in-memory size of
// φ^n stays linear in n even when the fully expanded formula would be
// exponential.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom is R(t1,...,tm).
type Atom struct {
	Pred string
	Args []Term
}

// Eq is t1 = t2; Neq is t1 ≠ t2.
type Eq struct{ L, R Term }

// Neq is the inequality constraint.
type Neq struct{ L, R Term }

// And is a (finite) conjunction.
type And struct{ Subs []Formula }

// Or is a (finite) disjunction.
type Or struct{ Subs []Formula }

// Exists is ∃v φ.
type Exists struct {
	Var string
	Sub Formula
}

// False is the empty disjunction, used for stage 0.
type False struct{}

// True is the empty conjunction.
type True struct{}

func (Atom) isFormula()    {}
func (Eq) isFormula()      {}
func (Neq) isFormula()     {}
func (*And) isFormula()    {}
func (*Or) isFormula()     {}
func (*Exists) isFormula() {}
func (False) isFormula()   {}
func (True) isFormula()    {}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

func (e Eq) String() string  { return fmt.Sprintf("%s=%s", e.L, e.R) }
func (n Neq) String() string { return fmt.Sprintf("%s!=%s", n.L, n.R) }

func (a *And) String() string {
	if len(a.Subs) == 0 {
		return "true"
	}
	parts := make([]string, len(a.Subs))
	for i, s := range a.Subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, " & ") + ")"
}

func (o *Or) String() string {
	if len(o.Subs) == 0 {
		return "false"
	}
	parts := make([]string, len(o.Subs))
	for i, s := range o.Subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

func (e *Exists) String() string { return fmt.Sprintf("E%s.%s", e.Var, e.Sub) }
func (False) String() string     { return "false" }
func (True) String() string      { return "true" }

// Eval evaluates the formula on a structure under an environment binding
// the free variables. Unknown relation symbols panic; unbound free
// variables panic — both are programming errors.
func Eval(s *structure.Structure, f Formula, env map[string]int) bool {
	switch g := f.(type) {
	case Atom:
		tup := make(structure.Tuple, len(g.Args))
		for i, t := range g.Args {
			tup[i] = termVal(t, env)
		}
		return s.Rel(g.Pred).Has(tup)
	case Eq:
		return termVal(g.L, env) == termVal(g.R, env)
	case Neq:
		return termVal(g.L, env) != termVal(g.R, env)
	case *And:
		for _, sub := range g.Subs {
			if !Eval(s, sub, env) {
				return false
			}
		}
		return true
	case *Or:
		for _, sub := range g.Subs {
			if Eval(s, sub, env) {
				return true
			}
		}
		return false
	case *Exists:
		saved, had := env[g.Var]
		for x := 0; x < s.N; x++ {
			env[g.Var] = x
			if Eval(s, g.Sub, env) {
				restore(env, g.Var, saved, had)
				return true
			}
		}
		restore(env, g.Var, saved, had)
		return false
	case False:
		return false
	case True:
		return true
	default:
		panic(fmt.Sprintf("logic: unknown formula node %T", f))
	}
}

func restore(env map[string]int, v string, saved int, had bool) {
	if had {
		env[v] = saved
	} else {
		delete(env, v)
	}
}

func termVal(t Term, env map[string]int) int {
	if !t.IsVar() {
		return t.Const
	}
	v, ok := env[t.Var]
	if !ok {
		panic("logic: unbound variable " + t.Var)
	}
	return v
}

// Variables returns the distinct variable names (free and bound) occurring
// in the formula, sorted. Its length is the paper's variable count for
// L^k membership. Shared subtrees are visited once.
func Variables(f Formula) []string {
	seen := map[string]bool{}
	visited := map[Formula]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Atom:
			for _, t := range g.Args {
				if t.IsVar() {
					seen[t.Var] = true
				}
			}
		case Eq:
			for _, t := range []Term{g.L, g.R} {
				if t.IsVar() {
					seen[t.Var] = true
				}
			}
		case Neq:
			for _, t := range []Term{g.L, g.R} {
				if t.IsVar() {
					seen[t.Var] = true
				}
			}
		case *And:
			if visited[f] {
				return
			}
			visited[f] = true
			for _, s := range g.Subs {
				walk(s)
			}
		case *Or:
			if visited[f] {
				return
			}
			visited[f] = true
			for _, s := range g.Subs {
				walk(s)
			}
		case *Exists:
			if visited[f] {
				return
			}
			visited[f] = true
			seen[g.Var] = true
			walk(g.Sub)
		}
	}
	walk(f)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FreeVars returns the free variables of the formula, sorted.
func FreeVars(f Formula) []string {
	free := map[string]bool{}
	var walk func(Formula, map[string]bool)
	walk = func(f Formula, bound map[string]bool) {
		switch g := f.(type) {
		case Atom:
			for _, t := range g.Args {
				if t.IsVar() && !bound[t.Var] {
					free[t.Var] = true
				}
			}
		case Eq:
			for _, t := range []Term{g.L, g.R} {
				if t.IsVar() && !bound[t.Var] {
					free[t.Var] = true
				}
			}
		case Neq:
			for _, t := range []Term{g.L, g.R} {
				if t.IsVar() && !bound[t.Var] {
					free[t.Var] = true
				}
			}
		case *And:
			for _, s := range g.Subs {
				walk(s, bound)
			}
		case *Or:
			for _, s := range g.Subs {
				walk(s, bound)
			}
		case *Exists:
			if bound[g.Var] {
				walk(g.Sub, bound)
				return
			}
			bound[g.Var] = true
			walk(g.Sub, bound)
			delete(bound, g.Var)
		}
	}
	walk(f, map[string]bool{})
	out := make([]string, 0, len(free))
	for v := range free {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// IsExistentialPositive reports whether the formula belongs to the
// existential negation-free fragment (always true for formulas built from
// this package's constructors; useful as a sanity check on generated
// stages).
func IsExistentialPositive(f Formula) bool {
	switch g := f.(type) {
	case Atom, Eq, Neq, False, True:
		return true
	case *And:
		for _, s := range g.Subs {
			if !IsExistentialPositive(s) {
				return false
			}
		}
		return true
	case *Or:
		for _, s := range g.Subs {
			if !IsExistentialPositive(s) {
				return false
			}
		}
		return true
	case *Exists:
		return IsExistentialPositive(g.Sub)
	default:
		return false
	}
}

// UsesInequality reports whether any ≠ occurs (Datalog vs Datalog(≠)
// distinction at the formula level). Shared subtrees are visited once.
func UsesInequality(f Formula) bool {
	visited := map[Formula]bool{}
	var walk func(Formula) bool
	walk = func(f Formula) bool {
		switch g := f.(type) {
		case Neq:
			return true
		case *And:
			if visited[f] {
				return false
			}
			visited[f] = true
			for _, s := range g.Subs {
				if walk(s) {
					return true
				}
			}
		case *Or:
			if visited[f] {
				return false
			}
			visited[f] = true
			for _, s := range g.Subs {
				if walk(s) {
					return true
				}
			}
		case *Exists:
			if visited[f] {
				return false
			}
			visited[f] = true
			return walk(g.Sub)
		}
		return false
	}
	return walk(f)
}

// PathLengthFormula returns the Example 3.4 formula p_n(x,y) asserting
// "there is a path of length n from x to y", written with only the three
// variables x, y, z via Immerman's recycling trick:
//
//	p_1(x,y) ≡ E(x,y)
//	p_n(x,y) ≡ ∃z(E(x,z) ∧ ∃x(x = z ∧ p_{n-1}(x,y)))
func PathLengthFormula(n int) Formula {
	if n < 1 {
		panic("logic: PathLengthFormula wants n >= 1")
	}
	f := Formula(Atom{Pred: "E", Args: []Term{V("x"), V("y")}})
	for i := 1; i < n; i++ {
		f = &Exists{Var: "z", Sub: &And{Subs: []Formula{
			Atom{Pred: "E", Args: []Term{V("x"), V("z")}},
			&Exists{Var: "x", Sub: &And{Subs: []Formula{
				Eq{L: V("x"), R: V("z")},
				f,
			}}},
		}}}
	}
	return f
}

// PathLengthInFormula returns ⋁_{n ∈ lengths} p_n(x,y): the Example 3.4
// query "x and y are connected by a path whose length is in the set" —
// still in L^3 regardless of the set.
func PathLengthInFormula(lengths []int) Formula {
	var subs []Formula
	for _, n := range lengths {
		subs = append(subs, PathLengthFormula(n))
	}
	return &Or{Subs: subs}
}
