package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomFromSeed(seed int64, n int, p float64) *Graph {
	return Random(n, p, rand.New(rand.NewSource(seed)))
}

func TestQuickReachabilityTransitive(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomFromSeed(seed, 7, 0.25)
		for u := 0; u < 7; u++ {
			for v := 0; v < 7; v++ {
				for w := 0; w < 7; w++ {
					if g.Reachable(u, v) && g.Reachable(v, w) && !g.Reachable(u, w) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransitiveClosureMatchesReachable(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomFromSeed(seed, 7, 0.25)
		tc := g.TransitiveClosure()
		for u := 0; u < 7; u++ {
			for v := 0; v < 7; v++ {
				// TC = path of length >= 1.
				want := false
				for _, y := range g.Out(u) {
					if y == v || g.Reachable(y, v) {
						want = true
						break
					}
				}
				if tc[[2]int{u, v}] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShortestPathIsShortest(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomFromSeed(seed, 8, 0.25)
		p := g.ShortestPath(0, 7)
		if p == nil {
			return !g.Reachable(0, 7)
		}
		if !p.ValidIn(g) || !p.Simple() {
			return false
		}
		// No simple path is shorter (check via enumeration).
		shortest := p.Len()
		ok := true
		g.SimplePaths(0, 7, 0, func(q Path) {
			if q.Len() < shortest {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDisjointPathsMonotone(t *testing.T) {
	// Adding an edge never destroys a disjoint-path routing.
	prop := func(seed int64, e uint16) bool {
		g := randomFromSeed(seed, 7, 0.2)
		before := g.DisjointSimplePaths([]int{0, 1}, []int{5, 6})
		u := int(e) % 7
		v := int(e>>3) % 7
		if u != v {
			g.AddEdge(u, v)
		}
		after := g.DisjointSimplePaths([]int{0, 1}, []int{5, 6})
		return !before || after
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubdivideDoublesDistances(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomFromSeed(seed, 7, 0.3)
		h, _ := Subdivide(g)
		for u := 0; u < 7; u++ {
			for v := 0; v < 7; v++ {
				pg := g.ShortestPath(u, v)
				ph := h.ShortestPath(u, v)
				if (pg == nil) != (ph == nil) {
					return false
				}
				if pg != nil && ph.Len() != 2*pg.Len() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelsBoundPathLengths(t *testing.T) {
	prop := func(seed int64) bool {
		g := RandomDAG(9, 0.3, rand.New(rand.NewSource(seed)))
		levels := g.Levels()
		for _, e := range g.Edges() {
			if levels[e[0]] < levels[e[1]]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
