// Package graph provides directed graphs and the path machinery used
// throughout the reproduction: reachability, simple-path and node-disjoint
// path search, DAG utilities, and deterministic generators for the graph
// families that appear in the paper's examples and constructions.
//
// Nodes are dense non-negative integers. Graphs are simple (no parallel
// edges); self-loops are allowed, matching the paper's convention that a
// pattern-graph root may carry a self-loop.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a mutable directed graph over nodes 0..N-1.
//
// The zero value is an empty graph. Adding an edge (u,v) implicitly grows
// the node set to include max(u,v)+1 nodes, so isolated trailing nodes must
// be declared with EnsureNodes.
type Graph struct {
	n   int
	out [][]int         // adjacency, sorted lazily
	in  [][]int         // reverse adjacency, sorted lazily
	set map[[2]int]bool // edge membership
}

// New returns an empty graph with n isolated nodes.
func New(n int) *Graph {
	g := &Graph{set: make(map[[2]int]bool)}
	g.EnsureNodes(n)
	return g
}

// EnsureNodes grows the graph so that it has at least n nodes.
func (g *Graph) EnsureNodes(n int) {
	if g.set == nil {
		g.set = make(map[[2]int]bool)
	}
	for g.n < n {
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
		g.n++
	}
}

// AddNode appends a fresh isolated node and returns its id.
func (g *Graph) AddNode() int {
	g.EnsureNodes(g.n + 1)
	return g.n - 1
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.set) }

// AddEdge inserts the directed edge (u,v), growing the node set if needed.
// Inserting an existing edge is a no-op; it reports whether the edge is new.
func (g *Graph) AddEdge(u, v int) bool {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative node in edge (%d,%d)", u, v))
	}
	if u >= g.n || v >= g.n {
		g.EnsureNodes(max(u, v) + 1)
	}
	key := [2]int{u, v}
	if g.set[key] {
		return false
	}
	g.set[key] = true
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	return true
}

// RemoveEdge deletes the directed edge (u,v) if present and reports whether
// it was present.
func (g *Graph) RemoveEdge(u, v int) bool {
	key := [2]int{u, v}
	if !g.set[key] {
		return false
	}
	delete(g.set, key)
	g.out[u] = removeFirst(g.out[u], v)
	g.in[v] = removeFirst(g.in[v], u)
	return true
}

func removeFirst(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// HasEdge reports whether the directed edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool { return g.set[[2]int{u, v}] }

// Out returns the out-neighbours of u in sorted order. The returned slice
// must not be modified.
func (g *Graph) Out(u int) []int {
	sort.Ints(g.out[u])
	return g.out[u]
}

// In returns the in-neighbours of v in sorted order. The returned slice
// must not be modified.
func (g *Graph) In(v int) []int {
	sort.Ints(g.in[v])
	return g.in[v]
}

// OutDegree returns the number of out-neighbours of u.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of in-neighbours of v.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Edges returns all edges in lexicographic order.
func (g *Graph) Edges() [][2]int {
	es := make([][2]int, 0, len(g.set))
	for e := range g.set {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := New(g.n)
	for e := range g.set {
		h.AddEdge(e[0], e[1])
	}
	return h
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	h := New(g.n)
	for e := range g.set {
		h.AddEdge(e[1], e[0])
	}
	return h
}

// Equal reports whether g and h have the same node count and edge set.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.set) != len(h.set) {
		return false
	}
	for e := range g.set {
		if !h.set[e] {
			return false
		}
	}
	return true
}

// String renders the graph as "n=<N> edges=[(u,v) ...]" for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d edges=[", g.n)
	for i, e := range g.Edges() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "(%d,%d)", e[0], e[1])
	}
	b.WriteByte(']')
	return b.String()
}

// DOT renders the graph in Graphviz DOT syntax. The optional labels map
// overrides node names; highlight marks nodes drawn as doublecircles.
func (g *Graph) DOT(name string, labels map[int]string, highlight map[int]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for v := 0; v < g.n; v++ {
		attrs := []string{}
		if l, ok := labels[v]; ok {
			attrs = append(attrs, fmt.Sprintf("label=%q", l))
		}
		if highlight[v] {
			attrs = append(attrs, "shape=doublecircle")
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  %d [%s];\n", v, strings.Join(attrs, ", "))
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -> %d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
