package graph

import "math/rand"

// DirectedPath returns the directed path 0 -> 1 -> ... -> n-1 on n nodes
// (the structures of Example 4.4).
func DirectedPath(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// DirectedCycle returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0.
func DirectedCycle(n int) *Graph {
	g := DirectedPath(n)
	if n > 0 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// TwoDisjointPathsGraph returns a graph made of two node-disjoint directed
// paths with len1 and len2 edges respectively (the structure A of
// Example 4.5 and the structures A_k of Theorem 6.6). It returns the graph
// and the four endpoints (s1, t1, s2, t2).
func TwoDisjointPathsGraph(len1, len2 int) (g *Graph, s1, t1, s2, t2 int) {
	g = New(len1 + len2 + 2)
	for i := 0; i < len1; i++ {
		g.AddEdge(i, i+1)
	}
	off := len1 + 1
	for i := 0; i < len2; i++ {
		g.AddEdge(off+i, off+i+1)
	}
	return g, 0, len1, off, off + len2
}

// CrossingPathsGraph returns the structure B of Example 4.5: two directed
// paths with 2n+1 vertices each, sharing exactly their middle ((n+1)-th)
// vertex. It returns the graph and the endpoints of the two paths.
func CrossingPathsGraph(n int) (g *Graph, s1, t1, s2, t2 int) {
	// First path: 0..2n. Second path: 2n+1..3n, then node n (the shared
	// middle), then 3n+1..4n.
	g = New(4*n + 1)
	for i := 0; i < 2*n; i++ {
		g.AddEdge(i, i+1)
	}
	mid := n
	prev := 2*n + 1
	for i := 2*n + 1; i < 3*n; i++ {
		g.AddEdge(i, i+1)
		prev = i + 1
	}
	if n >= 1 {
		g.AddEdge(prev, mid)
		next := 3*n + 1
		g.AddEdge(mid, next)
		for i := 3*n + 1; i < 4*n; i++ {
			g.AddEdge(i, i+1)
		}
		return g, 0, 2 * n, 2*n + 1, 4 * n
	}
	return g, 0, 0, 0, 0
}

// Random returns a random simple directed graph on n nodes in which each of
// the n*(n-1) candidate non-loop edges is present independently with
// probability p, using the given source for reproducibility.
func Random(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomDAG returns a random acyclic directed graph on n nodes: each edge
// (u,v) with u < v is present independently with probability p.
func RandomDAG(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// LayeredDAG returns a DAG with the given number of layers, width nodes per
// layer, and every cross-layer edge from layer i to layer i+1 present with
// probability p. Node v of layer i has id i*width+v. Useful as a workload
// for the acyclic-input homeomorphism experiments.
func LayeredDAG(layers, width int, p float64, rng *rand.Rand) *Graph {
	g := New(layers * width)
	for i := 0; i+1 < layers; i++ {
		for a := 0; a < width; a++ {
			for b := 0; b < width; b++ {
				if rng.Float64() < p {
					g.AddEdge(i*width+a, (i+1)*width+b)
				}
			}
		}
	}
	return g
}

// Grid returns the directed grid graph with r rows and c columns, edges
// pointing right and down. Node (i,j) has id i*c+j.
func Grid(r, c int) *Graph {
	g := New(r * c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(i*c+j, i*c+j+1)
			}
			if i+1 < r {
				g.AddEdge(i*c+j, (i+1)*c+j)
			}
		}
	}
	return g
}

// Complete returns the complete directed graph (all ordered pairs, no
// self-loops) on n nodes.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Union returns the disjoint union of g and h; nodes of h are shifted by
// g.N(). It returns the union and the offset applied to h's node ids.
func Union(g, h *Graph) (*Graph, int) {
	u := g.Clone()
	off := g.N()
	u.EnsureNodes(off + h.N())
	for _, e := range h.Edges() {
		u.AddEdge(e[0]+off, e[1]+off)
	}
	return u, off
}

// Subdivide returns the graph obtained by replacing every edge (u,v) with a
// length-2 path u -> w -> v through a fresh node w — the edge-doubling
// operation of Corollary 6.8. It also returns a map from each original edge
// to its fresh midpoint node.
func Subdivide(g *Graph) (*Graph, map[[2]int]int) {
	h := New(g.N())
	mid := make(map[[2]int]int)
	for _, e := range g.Edges() {
		w := h.AddNode()
		h.AddEdge(e[0], w)
		h.AddEdge(w, e[1])
		mid[e] = w
	}
	return h, mid
}
