package graph

import "fmt"

// Path is a sequence of nodes connected by consecutive edges.
type Path []int

// Len returns the number of edges on the path.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Simple reports whether the path repeats no node. By the paper's
// convention a single node (path of length 0) is simple.
func (p Path) Simple() bool {
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// ValidIn reports whether every consecutive pair of p is an edge of g.
func (p Path) ValidIn(g *Graph) bool {
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return false
		}
	}
	return true
}

// Avoids reports whether the path touches none of the forbidden nodes.
func (p Path) Avoids(forbidden map[int]bool) bool {
	for _, v := range p {
		if forbidden[v] {
			return false
		}
	}
	return true
}

// NodeDisjoint reports whether p and q share no node, except that equal
// endpoints are permitted when allowSharedEndpoints is set (the paper's
// definition of node-disjoint simple paths allows equal endpoints only for
// pattern graphs that identify them; our callers pass false by default).
func NodeDisjoint(p, q Path, allowSharedEndpoints bool) bool {
	interior := func(r Path, i int) bool { return i > 0 && i < len(r)-1 }
	on := make(map[int]int, len(p)) // node -> index in p
	for i, v := range p {
		on[v] = i
	}
	for j, v := range q {
		i, ok := on[v]
		if !ok {
			continue
		}
		if allowSharedEndpoints && !interior(p, i) && !interior(q, j) {
			continue
		}
		return false
	}
	return true
}

// Reachable reports whether v is reachable from u (including u == v).
func (g *Graph) Reachable(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, g.n)
	queue := []int{u}
	seen[u] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.out[x] {
			if y == v {
				return true
			}
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return false
}

// ReachableAvoiding reports whether there is a path from u to v whose
// intermediate and final nodes avoid the forbidden set. The start node u is
// exempt unless forbidden[u] is checked by the caller; this matches the
// w-avoiding-path query of Example 2.1 where the whole path, including
// endpoints, must avoid w — callers should include endpoints in forbidden
// when the query requires it.
func (g *Graph) ReachableAvoiding(u, v int, forbidden map[int]bool) bool {
	if forbidden[u] || forbidden[v] {
		return false
	}
	if u == v {
		return true
	}
	seen := make([]bool, g.n)
	queue := []int{u}
	seen[u] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.out[x] {
			if forbidden[y] {
				continue
			}
			if y == v {
				return true
			}
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return false
}

// ShortestPath returns a shortest path from u to v, or nil if none exists.
func (g *Graph) ShortestPath(u, v int) Path {
	if u == v {
		return Path{u}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.Out(x) {
			if prev[y] != -1 {
				continue
			}
			prev[y] = x
			if y == v {
				var p Path
				for c := v; c != u; c = prev[c] {
					p = append(Path{c}, p...)
				}
				return append(Path{u}, p...)
			}
			queue = append(queue, y)
		}
	}
	return nil
}

// TransitiveClosure returns the set of ordered pairs (u,v), u-to-v
// reachable by a path of length >= 1. This is the semantics of the
// transitive-closure Datalog program of Example 2.2.
func (g *Graph) TransitiveClosure() map[[2]int]bool {
	tc := make(map[[2]int]bool)
	for u := 0; u < g.n; u++ {
		seen := make([]bool, g.n)
		var stack []int
		for _, y := range g.out[u] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tc[[2]int{u, x}] = true
			for _, y := range g.out[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
	}
	return tc
}

// SimplePaths enumerates all simple paths from u to v, invoking visit with a
// copy of each. Enumeration is exponential in general; limit bounds the
// number of paths visited (limit <= 0 means unbounded). It reports whether
// enumeration was exhaustive (false when the limit stopped it).
// When u == v the paths enumerated are the simple cycles through u
// (length >= 1); the trivial length-0 path is never emitted.
func (g *Graph) SimplePaths(u, v int, limit int, visit func(Path)) bool {
	onPath := make([]bool, g.n)
	var cur Path
	count := 0
	stopped := false
	emit := func(p Path) {
		cp := make(Path, len(p))
		copy(cp, p)
		visit(cp)
		count++
		if limit > 0 && count >= limit {
			stopped = true
		}
	}
	var rec func(x int)
	rec = func(x int) {
		onPath[x] = true
		cur = append(cur, x)
		for _, y := range g.Out(x) {
			if stopped {
				break
			}
			if y == v {
				// Terminal step: a simple path ends the moment it reaches
				// v, since revisiting v is impossible.
				emit(append(cur, y))
				continue
			}
			if onPath[y] {
				continue
			}
			rec(y)
		}
		cur = cur[:len(cur)-1]
		onPath[x] = false
	}
	rec(u)
	return !stopped
}

// HasSimplePathOfParity reports whether there is a simple path from u to v
// whose length has the given parity (0 = even, 1 = odd). Length-0 paths
// (u == v) count as even. This is the NP-complete even-simple-path query of
// [LM89] decided by brute force; use only on small graphs.
func (g *Graph) HasSimplePathOfParity(u, v, parity int) bool {
	if u == v && parity == 0 {
		return true
	}
	found := false
	g.SimplePaths(u, v, 0, func(p Path) {
		if p.Len()%2 == parity {
			found = true
		}
	})
	return found
}

// DisjointSimplePaths reports whether g contains pairwise node-disjoint
// simple paths p_i from sources[i] to targets[i] for all i. The search
// treats every node as usable by at most one path, so all endpoints must be
// pairwise distinct (the paper's distinguished nodes are). Brute force:
// exponential, intended as ground truth on small graphs.
func (g *Graph) DisjointSimplePaths(sources, targets []int) bool {
	return g.FindDisjointSimplePaths(sources, targets) != nil
}

// FindDisjointSimplePaths returns pairwise node-disjoint simple paths from
// sources[i] to targets[i] for all i, or nil if none exist. Brute force.
func (g *Graph) FindDisjointSimplePaths(sources, targets []int) []Path {
	if len(sources) != len(targets) {
		panic("graph: sources/targets length mismatch")
	}
	k := len(sources)
	used := make([]bool, g.n)
	// Endpoints of paths not yet routed are reserved so earlier paths do
	// not run through them.
	reserved := make([]int, g.n)
	for i := 0; i < k; i++ {
		reserved[sources[i]]++
		reserved[targets[i]]++
	}
	result := make([]Path, k)
	var route func(i int) bool
	var walk func(i, x, t int, cur Path) bool
	route = func(i int) bool {
		if i == k {
			return true
		}
		s, t := sources[i], targets[i]
		if used[s] || used[t] {
			return false
		}
		reserved[s]--
		reserved[t]--
		ok := walk(i, s, t, nil)
		reserved[s]++
		reserved[t]++
		return ok
	}
	walk = func(i, x, t int, cur Path) bool {
		used[x] = true
		cur = append(cur, x)
		defer func() { used[x] = false }()
		if x == t {
			cp := make(Path, len(cur))
			copy(cp, cur)
			result[i] = cp
			if route(i + 1) {
				return true
			}
			result[i] = nil
			return false
		}
		for _, y := range g.Out(x) {
			if used[y] || reserved[y] > 0 {
				continue
			}
			if walk(i, y, t, cur) {
				return true
			}
		}
		return false
	}
	// The deferred unmarks above unwind the used[] flags on success as well,
	// which is harmless: once route(0) returns true every path is recorded
	// in result and no further search runs. The recursion keeps flags
	// correct *during* the search because route(i+1) is invoked before any
	// deferred unmark of path i fires.
	if route(0) {
		return result
	}
	return nil
}

// TwoDisjointPaths reports whether g has node-disjoint simple paths from s1
// to t1 and from s2 to t2 (the H1-subgraph homeomorphism query of §6.2).
func (g *Graph) TwoDisjointPaths(s1, t1, s2, t2 int) bool {
	return g.DisjointSimplePaths([]int{s1, s2}, []int{t1, t2})
}

// Describe returns a short human-readable summary, used by the cmd tools.
func (g *Graph) Describe() string {
	return fmt.Sprintf("%d nodes, %d edges", g.N(), g.M())
}
