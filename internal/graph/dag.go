package graph

// IsAcyclic reports whether the graph has no directed cycle (self-loops
// count as cycles).
func (g *Graph) IsAcyclic() bool {
	_, ok := g.TopoOrder()
	return ok
}

// TopoOrder returns a topological order of the nodes and true, or nil and
// false if the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, bool) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = g.InDegree(v)
	}
	var queue []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		order = append(order, x)
		for _, y := range g.Out(x) {
			indeg[y]--
			if indeg[y] == 0 {
				queue = append(queue, y)
			}
		}
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// Levels returns, for each node of an acyclic graph, the length of the
// longest path starting at that node — the "level" used by the strategy
// argument in the proof of Theorem 6.2. It panics if the graph is cyclic.
func (g *Graph) Levels() []int {
	order, ok := g.TopoOrder()
	if !ok {
		panic("graph: Levels on cyclic graph")
	}
	level := make([]int, g.n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, y := range g.Out(v) {
			if level[y]+1 > level[v] {
				level[v] = level[y] + 1
			}
		}
	}
	return level
}

// LongestPathLen returns the number of edges on a longest simple path in an
// acyclic graph. It panics if the graph is cyclic.
func (g *Graph) LongestPathLen() int {
	best := 0
	for _, l := range g.Levels() {
		if l > best {
			best = l
		}
	}
	return best
}
