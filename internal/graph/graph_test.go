package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAddEdgeGrowsAndDedups(t *testing.T) {
	g := New(0)
	if !g.AddEdge(2, 5) {
		t.Fatal("first insert should be new")
	}
	if g.AddEdge(2, 5) {
		t.Fatal("duplicate insert should report false")
	}
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(2, 5) || g.HasEdge(5, 2) {
		t.Fatal("edge direction wrong")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("remove existing edge")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("remove missing edge should report false")
	}
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("wrong edges after removal")
	}
	if got := g.OutDegree(0); got != 0 {
		t.Fatalf("OutDegree(0) = %d, want 0", got)
	}
	if got := g.InDegree(1); got != 0 {
		t.Fatalf("InDegree(1) = %d, want 0", got)
	}
}

func TestSelfLoop(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0)
	if !g.HasEdge(0, 0) {
		t.Fatal("self-loop missing")
	}
	if g.IsAcyclic() {
		t.Fatal("self-loop is a cycle")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 3)
	out := g.Out(0)
	for i := 0; i+1 < len(out); i++ {
		if out[i] >= out[i+1] {
			t.Fatalf("Out not sorted: %v", out)
		}
	}
}

func TestCloneReverseEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Random(12, 0.3, rng)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.AddEdge(0, 0)
	if g.Equal(c) {
		t.Fatal("clone aliasing: mutation leaked")
	}
	r := g.Reverse()
	for _, e := range g.Edges() {
		if !r.HasEdge(e[1], e[0]) {
			t.Fatalf("reverse missing (%d,%d)", e[1], e[0])
		}
	}
	if r.M() != g.M() {
		t.Fatal("reverse changed edge count")
	}
	if !g.Reverse().Reverse().Equal(g) {
		t.Fatal("double reverse is not identity")
	}
}

func TestReachable(t *testing.T) {
	g := DirectedPath(5)
	if !g.Reachable(0, 4) {
		t.Fatal("path end should be reachable")
	}
	if g.Reachable(4, 0) {
		t.Fatal("reverse direction should be unreachable")
	}
	if !g.Reachable(2, 2) {
		t.Fatal("node reachable from itself")
	}
}

func TestReachableAvoiding(t *testing.T) {
	// Diamond: 0->1->3, 0->2->3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	if !g.ReachableAvoiding(0, 3, map[int]bool{1: true}) {
		t.Fatal("should route around node 1 via 2")
	}
	if g.ReachableAvoiding(0, 3, map[int]bool{1: true, 2: true}) {
		t.Fatal("both middles blocked")
	}
	if g.ReachableAvoiding(0, 3, map[int]bool{0: true}) {
		t.Fatal("blocked source")
	}
	if g.ReachableAvoiding(0, 3, map[int]bool{3: true}) {
		t.Fatal("blocked target")
	}
}

func TestShortestPath(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	g.AddEdge(4, 3)
	p := g.ShortestPath(0, 3)
	if p.Len() != 2 {
		t.Fatalf("shortest path length = %d, want 2", p.Len())
	}
	if !p.ValidIn(g) || !p.Simple() {
		t.Fatal("shortest path invalid")
	}
	if p := g.ShortestPath(3, 0); p != nil {
		t.Fatalf("no path expected, got %v", p)
	}
	if p := g.ShortestPath(2, 2); p.Len() != 0 {
		t.Fatal("self path should have length 0")
	}
}

func TestTransitiveClosurePath(t *testing.T) {
	g := DirectedPath(4)
	tc := g.TransitiveClosure()
	want := map[[2]int]bool{
		{0, 1}: true, {0, 2}: true, {0, 3}: true,
		{1, 2}: true, {1, 3}: true, {2, 3}: true,
	}
	if len(tc) != len(want) {
		t.Fatalf("tc size = %d, want %d (%v)", len(tc), len(want), tc)
	}
	for k := range want {
		if !tc[k] {
			t.Fatalf("tc missing %v", k)
		}
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	g := DirectedCycle(3)
	tc := g.TransitiveClosure()
	// Every ordered pair including (v,v) is connected by a path >= 1.
	if len(tc) != 9 {
		t.Fatalf("tc size = %d, want 9", len(tc))
	}
}

func TestSimplePathsEnumeration(t *testing.T) {
	// Diamond with a shortcut: 0->1->3, 0->2->3, 0->3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)
	var got []Path
	exhaustive := g.SimplePaths(0, 3, 0, func(p Path) { got = append(got, p) })
	if !exhaustive {
		t.Fatal("unlimited enumeration must be exhaustive")
	}
	if len(got) != 3 {
		t.Fatalf("found %d simple paths, want 3: %v", len(got), got)
	}
	for _, p := range got {
		if !p.Simple() || !p.ValidIn(g) {
			t.Fatalf("bad path %v", p)
		}
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("wrong endpoints %v", p)
		}
	}
}

func TestSimplePathsLimit(t *testing.T) {
	g := Complete(5)
	n := 0
	exhaustive := g.SimplePaths(0, 4, 2, func(Path) { n++ })
	if exhaustive {
		t.Fatal("limited enumeration reported exhaustive")
	}
	if n != 2 {
		t.Fatalf("visited %d paths, want 2", n)
	}
}

func TestSimplePathsCycles(t *testing.T) {
	g := DirectedCycle(4)
	var got []Path
	g.SimplePaths(0, 0, 0, func(p Path) { got = append(got, p) })
	if len(got) != 1 {
		t.Fatalf("cycle count = %d, want 1", len(got))
	}
	if got[0].Len() != 4 {
		t.Fatalf("cycle length = %d, want 4", got[0].Len())
	}
}

func TestHasSimplePathOfParity(t *testing.T) {
	g := DirectedPath(4) // 0->1->2->3, unique path length 3 (odd)
	if g.HasSimplePathOfParity(0, 3, 0) {
		t.Fatal("no even path expected")
	}
	if !g.HasSimplePathOfParity(0, 3, 1) {
		t.Fatal("odd path expected")
	}
	if !g.HasSimplePathOfParity(2, 2, 0) {
		t.Fatal("trivial path is even")
	}
	// Add shortcut 0->2 to create an even path 0->2->3? That has length 2.
	g.AddEdge(0, 2)
	if !g.HasSimplePathOfParity(0, 3, 0) {
		t.Fatal("even path 0->2->3 expected")
	}
}

func TestNodeDisjoint(t *testing.T) {
	p := Path{0, 1, 2}
	q := Path{3, 4, 5}
	if !NodeDisjoint(p, q, false) {
		t.Fatal("disjoint paths reported intersecting")
	}
	r := Path{3, 1, 5}
	if NodeDisjoint(p, r, false) {
		t.Fatal("interior intersection missed")
	}
	s := Path{2, 4, 6}
	if NodeDisjoint(p, s, false) {
		t.Fatal("strict mode must reject shared endpoint")
	}
	if !NodeDisjoint(p, s, true) {
		t.Fatal("shared endpoints allowed in relaxed mode")
	}
}

func TestDisjointSimplePathsBasic(t *testing.T) {
	g, s1, t1, s2, t2 := TwoDisjointPathsGraph(3, 4)
	if !g.TwoDisjointPaths(s1, t1, s2, t2) {
		t.Fatal("two genuinely disjoint paths not found")
	}
	paths := g.FindDisjointSimplePaths([]int{s1, s2}, []int{t1, t2})
	if paths == nil {
		t.Fatal("no witness returned")
	}
	if !NodeDisjoint(paths[0], paths[1], false) {
		t.Fatalf("witness paths intersect: %v %v", paths[0], paths[1])
	}
	for i, p := range paths {
		if !p.ValidIn(g) || !p.Simple() {
			t.Fatalf("witness path %d invalid: %v", i, p)
		}
	}
}

func TestDisjointSimplePathsCrossing(t *testing.T) {
	// Example 4.5's B structure: the two paths must cross at the middle,
	// so no node-disjoint routing exists.
	g, s1, t1, s2, t2 := CrossingPathsGraph(3)
	if g.TwoDisjointPaths(s1, t1, s2, t2) {
		t.Fatal("crossing paths graph should have no disjoint routing")
	}
	// But each path individually exists.
	if !g.Reachable(s1, t1) || !g.Reachable(s2, t2) {
		t.Fatal("individual paths should exist")
	}
}

func TestDisjointSimplePathsNeedsDetour(t *testing.T) {
	// 0->1->2 and 3->1->4, plus detour 3->5->4: routing path 2 through 1
	// would block path 1, so the search must take the detour.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 1)
	g.AddEdge(1, 4)
	g.AddEdge(3, 5)
	g.AddEdge(5, 4)
	if !g.DisjointSimplePaths([]int{0, 3}, []int{2, 4}) {
		t.Fatal("detour routing not found")
	}
	g.RemoveEdge(3, 5)
	if g.DisjointSimplePaths([]int{0, 3}, []int{2, 4}) {
		t.Fatal("without detour both paths need node 1")
	}
}

func TestDisjointSimplePathsReservedEndpoints(t *testing.T) {
	// Path 1 could route through path 2's source; it must not.
	// 0->3->1 is the only 0->1 route; 3->4 for path 2.
	g := New(5)
	g.AddEdge(0, 3)
	g.AddEdge(3, 1)
	g.AddEdge(3, 4)
	if g.DisjointSimplePaths([]int{0, 3}, []int{1, 4}) {
		t.Fatal("path 1 used path 2's source node")
	}
}

func TestThreeDisjointPaths(t *testing.T) {
	// Three parallel paths from a common layer; endpoints all distinct.
	g := New(9)
	for i := 0; i < 3; i++ {
		g.AddEdge(i, 3+i)
		g.AddEdge(3+i, 6+i)
	}
	if !g.DisjointSimplePaths([]int{0, 1, 2}, []int{6, 7, 8}) {
		t.Fatal("three parallel paths exist")
	}
	// Funnel all through one node: impossible for even two paths.
	h := New(9)
	for i := 0; i < 3; i++ {
		h.AddEdge(i, 4)
		h.AddEdge(4, 6+i)
	}
	if h.DisjointSimplePaths([]int{0, 1, 2}, []int{6, 7, 8}) {
		t.Fatal("funnel cannot carry three disjoint paths")
	}
}

func TestTopoOrderAndLevels(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("DAG misclassified as cyclic")
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("topo order violates edge %v", e)
		}
	}
	levels := g.Levels()
	want := []int{3, 2, 2, 1, 0, 0}
	for v, w := range want {
		if levels[v] != w {
			t.Fatalf("level[%d] = %d, want %d", v, levels[v], w)
		}
	}
	if g.LongestPathLen() != 3 {
		t.Fatalf("longest path = %d, want 3", g.LongestPathLen())
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := DirectedCycle(3)
	if _, ok := g.TopoOrder(); ok {
		t.Fatal("cycle should have no topo order")
	}
	if g.IsAcyclic() {
		t.Fatal("cycle misclassified as acyclic")
	}
}

func TestGenerators(t *testing.T) {
	if g := DirectedPath(5); g.M() != 4 || !g.IsAcyclic() {
		t.Fatal("DirectedPath wrong")
	}
	if g := DirectedCycle(5); g.M() != 5 || g.IsAcyclic() {
		t.Fatal("DirectedCycle wrong")
	}
	if g := Grid(3, 4); g.N() != 12 || g.M() != 3*3+2*4 || !g.IsAcyclic() {
		t.Fatal("Grid wrong")
	}
	if g := Complete(4); g.M() != 12 {
		t.Fatal("Complete wrong")
	}
	rng := rand.New(rand.NewSource(7))
	if g := RandomDAG(20, 0.3, rng); !g.IsAcyclic() {
		t.Fatal("RandomDAG produced a cycle")
	}
	if g := LayeredDAG(4, 3, 0.5, rng); !g.IsAcyclic() || g.N() != 12 {
		t.Fatal("LayeredDAG wrong")
	}
}

func TestCrossingPathsGraphShape(t *testing.T) {
	for n := 1; n <= 4; n++ {
		g, s1, t1, s2, t2 := CrossingPathsGraph(n)
		if g.N() != 4*n+1 {
			t.Fatalf("n=%d: N=%d, want %d", n, g.N(), 4*n+1)
		}
		p1 := g.ShortestPath(s1, t1)
		p2 := g.ShortestPath(s2, t2)
		if p1.Len() != 2*n || p2.Len() != 2*n {
			t.Fatalf("n=%d: path lengths %d,%d want %d", n, p1.Len(), p2.Len(), 2*n)
		}
		// The unique intersection is the middle node.
		shared := 0
		on := map[int]bool{}
		for _, v := range p1 {
			on[v] = true
		}
		for _, v := range p2 {
			if on[v] {
				shared++
			}
		}
		if shared != 1 {
			t.Fatalf("n=%d: %d shared nodes, want 1", n, shared)
		}
	}
}

func TestUnion(t *testing.T) {
	g := DirectedPath(3)
	h := DirectedCycle(3)
	u, off := Union(g, h)
	if u.N() != 6 || u.M() != 2+3 {
		t.Fatalf("union shape wrong: %s", u.Describe())
	}
	if off != 3 {
		t.Fatalf("offset = %d, want 3", off)
	}
	if !u.HasEdge(0, 1) || !u.HasEdge(5, 3) {
		t.Fatal("union edges wrong")
	}
}

func TestSubdivide(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	h, mid := Subdivide(g)
	if h.N() != 5 || h.M() != 4 {
		t.Fatalf("subdivide shape wrong: %s", h.Describe())
	}
	for e, w := range mid {
		if !h.HasEdge(e[0], w) || !h.HasEdge(w, e[1]) {
			t.Fatalf("midpoint wiring wrong for %v", e)
		}
		if h.HasEdge(e[0], e[1]) {
			t.Fatalf("original edge %v should be gone", e)
		}
	}
	// Path parity doubles: 0->...->2 had length 2, now 4.
	if p := h.ShortestPath(0, 2); p.Len() != 4 {
		t.Fatalf("subdivided path length = %d, want 4", p.Len())
	}
}

func TestDOTOutput(t *testing.T) {
	g := DirectedPath(2)
	dot := g.DOT("p", map[int]string{0: "s"}, map[int]bool{1: true})
	for _, want := range []string{"digraph", "0 -> 1", "label=\"s\"", "doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
