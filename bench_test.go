// Benchmark harness: one benchmark (or family) per experiment in DESIGN.md
// §4. Run with
//
//	go test -bench=. -benchmem
//
// The absolute numbers are machine-dependent; the shapes the paper implies
// (semi-naive beats naive, the game solver is polynomial in n for fixed k
// but exponential in k, flow crushes brute force, G_φ grows linearly in
// the formula) are asserted in EXPERIMENTS.md against a recorded run.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/datalog"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/homeo"
	"repro/internal/logic"
	"repro/internal/magic"
	"repro/internal/pebble"
	"repro/internal/plan"
	"repro/internal/structure"
	"repro/internal/switchgraph"
)

// --- E1 / E14: the engine ---

func benchEval(b *testing.B, p *datalog.Program, g *graph.Graph, opt datalog.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := datalog.FromGraph(g)
		res, err := datalog.Eval(p, db, opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkE1_TransitiveClosureSemiNaive(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		b.Run(fmt.Sprintf("path-%d", n), func(b *testing.B) {
			benchEval(b, datalog.TransitiveClosureProgram(), graph.DirectedPath(n),
				datalog.Options{SemiNaive: true, UseIndexes: true})
		})
	}
}

func BenchmarkE1_TransitiveClosureParallelism(b *testing.B) {
	// The Options.Parallelism knob: 1 is the strictly sequential engine,
	// 0 (auto) uses GOMAXPROCS workers per round.
	g := graph.DirectedPath(80)
	for _, par := range []int{1, 0} {
		name := "seq"
		if par == 0 {
			name = "auto"
		}
		b.Run(name, func(b *testing.B) {
			benchEval(b, datalog.TransitiveClosureProgram(), g,
				datalog.Options{SemiNaive: true, UseIndexes: true, Parallelism: par})
		})
	}
}

func BenchmarkE1_AvoidingPath(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Random(12, 0.2, rng)
	benchEval(b, datalog.AvoidingPathProgram(), g, datalog.DefaultOptions)
}

func BenchmarkE14_SemiNaiveVsNaive(b *testing.B) {
	g := graph.DirectedPath(40)
	b.Run("seminaive", func(b *testing.B) {
		benchEval(b, datalog.TransitiveClosureProgram(), g, datalog.Options{SemiNaive: true, UseIndexes: true})
	})
	b.Run("naive", func(b *testing.B) {
		benchEval(b, datalog.TransitiveClosureProgram(), g, datalog.Options{SemiNaive: false, UseIndexes: true})
	})
}

func BenchmarkE14_IndexAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Random(40, 0.1, rng)
	b.Run("indexed", func(b *testing.B) {
		benchEval(b, datalog.TransitiveClosureProgram(), g, datalog.Options{SemiNaive: true, UseIndexes: true})
	})
	b.Run("scan", func(b *testing.B) {
		benchEval(b, datalog.TransitiveClosureProgram(), g, datalog.Options{SemiNaive: true, UseIndexes: false})
	})
}

// --- E24: incremental maintenance (internal/service substrate) ---

// E24 measures keeping an 80-node transitive-closure fixpoint current
// across single-edge EDB updates (the standing-query workload of
// internal/service) against from-scratch re-evaluation.
//
// insert: add a shortcut edge the closure already implies, then revert —
// the pure delta-seeding path (the added edge derives only duplicates).
// delete: remove a load-bearing path edge (DRed over-deletes the ~1600
// closure tuples crossing it), then restore it (delta seeding re-derives
// them) — the worst-case maintenance cycle.
// Compare per-op times against BenchmarkE24_FullReeval, which is what a
// non-incremental engine pays on every commit.
func BenchmarkE24_IncrementalMaintenance(b *testing.B) {
	const n = 80
	newInc := func(b *testing.B) *datalog.Incremental {
		inc, err := datalog.NewIncremental(
			datalog.TransitiveClosureProgram(), datalog.FromGraph(graph.DirectedPath(n)), datalog.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		return inc
	}
	// Each iteration times one maintenance op; the revert restoring the
	// 80-node fixpoint for the next iteration runs off the clock.
	cycle := func(b *testing.B, timed, revert func(*datalog.Incremental, datalog.Fact) error, f datalog.Fact) {
		b.Helper()
		inc := newInc(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := timed(inc, f); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := revert(inc, f); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	ins := func(inc *datalog.Incremental, f datalog.Fact) error { return inc.Insert(f) }
	del := func(inc *datalog.Incremental, f datalog.Fact) error { return inc.Delete(f) }
	b.Run("insert", func(b *testing.B) {
		cycle(b, ins, del, datalog.Fact{Pred: "E", Tuple: datalog.Tuple{10, 12}})
	})
	b.Run("delete", func(b *testing.B) {
		cycle(b, del, ins, datalog.Fact{Pred: "E", Tuple: datalog.Tuple{n/2 - 1, n / 2}})
	})
}

func BenchmarkE24_FullReeval(b *testing.B) {
	g := graph.DirectedPath(80)
	benchEval(b, datalog.TransitiveClosureProgram(), g, datalog.DefaultOptions)
}

// --- E2/E3/E4: pebble games ---

func BenchmarkE2_PathGame(b *testing.B) {
	a := structure.FromGraph(graph.DirectedPath(6), nil, nil)
	bb := structure.FromGraph(graph.DirectedPath(8), nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pebble.NewGame(a, bb, 2).MustSolve() != pebble.PlayerII {
			b.Fatal("wrong winner")
		}
	}
}

func BenchmarkE3_DisjointPathGame(b *testing.B) {
	ga, _, _, _, _ := graph.TwoDisjointPathsGraph(4, 4)
	gb, _, _, _, _ := graph.CrossingPathsGraph(2)
	a := structure.FromGraph(ga, nil, nil)
	bb := structure.FromGraph(gb, nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pebble.NewGame(a, bb, 3).MustSolve() != pebble.PlayerI {
			b.Fatal("wrong winner")
		}
	}
}

func BenchmarkE4_GameSolverScaling(b *testing.B) {
	// Polynomial in n for fixed k (Proposition 5.3): watch ns/op grow
	// polynomially across sizes.
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("k2-n%d", n), func(b *testing.B) {
			a := structure.FromGraph(graph.DirectedPath(n), nil, nil)
			bb := structure.FromGraph(graph.DirectedPath(n+2), nil, nil)
			for i := 0; i < b.N; i++ {
				pebble.NewGame(a, bb, 2).MustSolve()
			}
		})
	}
	// And exponential in k: same structures, growing k.
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("n6-k%d", k), func(b *testing.B) {
			a := structure.FromGraph(graph.DirectedPath(6), nil, nil)
			bb := structure.FromGraph(graph.DirectedPath(8), nil, nil)
			for i := 0; i < b.N; i++ {
				pebble.NewGame(a, bb, k).MustSolve()
			}
		})
	}
}

func BenchmarkE4_SolverAblation(b *testing.B) {
	// The two Proposition 5.3 formulations: greatest winning family vs
	// explicit Win_k move recursion.
	a := structure.FromGraph(graph.DirectedPath(8), nil, nil)
	bb := structure.FromGraph(graph.DirectedPath(10), nil, nil)
	b.Run("family", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pebble.NewGame(a, bb, 2).MustSolve()
		}
	})
	b.Run("wink", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pebble.NewWinkSolver(a, bb, 2).Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E5/E6: the positive Datalog(≠) results ---

func BenchmarkE5_DisjointPathsProgram(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Random(8, 0.3, rng)
	prog := datalog.QklPrograms(2, 0)
	b.Run("datalog-Q2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			datalog.MustEval(prog, datalog.FromGraph(g))
		}
	})
	b.Run("flow-oracle-all-triples", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 0; s < 8; s++ {
				for s1 := 0; s1 < 8; s1++ {
					for s2 := s1 + 1; s2 < 8; s2++ {
						if s != s1 && s != s2 {
							flow.FanOutCount(g, s, []int{s1, s2})
						}
					}
				}
			}
		}
	})
	b.Run("brute-force-all-triples", func(b *testing.B) {
		p := homeo.Star(2, false)
		for i := 0; i < b.N; i++ {
			for s := 0; s < 8; s++ {
				for s1 := 0; s1 < 8; s1++ {
					for s2 := s1 + 1; s2 < 8; s2++ {
						if s != s1 && s != s2 {
							inst, err := homeo.NewInstance(p, g, []int{s, s1, s2})
							if err != nil {
								b.Fatal(err)
							}
							p.BruteForce(inst)
						}
					}
				}
			}
		}
	})
}

func BenchmarkE6_AcyclicGame(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomDAG(12, 0.25, rng)
	inst, err := homeo.NewInstance(homeo.H1(), g, []int{0, 10, 1, 11})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("game", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			game, err := homeo.NewAcyclicGame(homeo.H1(), inst)
			if err != nil {
				b.Fatal(err)
			}
			game.PlayerIIWins()
		}
	})
	b.Run("datalog-D", func(b *testing.B) {
		prog := datalog.TwoDisjointPathsAcyclicProgram(0, 10, 1, 11)
		for i := 0; i < b.N; i++ {
			datalog.MustEval(prog, datalog.FromGraph(g))
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			homeo.H1().BruteForce(inst)
		}
	})
}

// --- E7/E8: the switch and the reduction ---

func BenchmarkE7_SwitchEnumeration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, _ := switchgraph.StandaloneSwitch()
		paths := switchgraph.PassingPaths(g)
		if len(paths) < 6 {
			b.Fatal("missing paths")
		}
	}
}

func BenchmarkE8_SATReduction(b *testing.B) {
	// Construction cost scales linearly with formula size.
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("build-phi%d", k), func(b *testing.B) {
			f := cnf.Complete(k)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				switchgraph.Build(f)
			}
		})
	}
	b.Run("decide-fig5", func(b *testing.B) {
		c := switchgraph.Build(cnf.New(cnf.Clause{1, -1}))
		g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
		for i := 0; i < b.N; i++ {
			if !g.TwoDisjointPaths(s1, s2, s3, s4) {
				b.Fatal("wrong answer")
			}
		}
	})
}

// --- E9: the lower-bound witness ---

func BenchmarkE9_LowerBoundWitness(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("build-k%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				homeo.NewLowerBound(k)
			}
		})
	}
	b.Run("strategy-schedule-k2", func(b *testing.B) {
		lb := homeo.NewLowerBound(2)
		a, bb := lb.Structures()
		dup := homeo.NewDuplicator(lb)
		ref := pebble.NewReferee(a, bb, 2)
		rng := rand.New(rand.NewSource(5))
		moves := pebble.RandomSchedule(rng, a.N, 2, 200)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ref.Play(dup, moves); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E10: formula games ---

func BenchmarkE10_FormulaGame(b *testing.B) {
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("phi%d-k%d", k, k), func(b *testing.B) {
			f := cnf.Complete(k)
			for i := 0; i < b.N; i++ {
				if !cnf.NewFormulaGame(f, k).PlayerIIWins() {
					b.Fatal("wrong winner")
				}
			}
		})
	}
}

// --- E11: stage translation ---

func BenchmarkE11_StageTranslation(b *testing.B) {
	p := datalog.TransitiveClosureProgram()
	b.Run("build-stage-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := logic.NewTranslator(p)
			if err != nil {
				b.Fatal(err)
			}
			tr.Stage("S", 8)
		}
	})
	b.Run("eval-stage-5", func(b *testing.B) {
		tr, err := logic.NewTranslator(p)
		if err != nil {
			b.Fatal(err)
		}
		f := tr.Stage("S", 5)
		s := structure.FromGraph(graph.DirectedPath(6), nil, nil)
		env := map[string]int{"w1": 0, "w2": 5}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !logic.Eval(s, f, env) {
				b.Fatal("stage 5 should reach distance 5")
			}
		}
	})
}

// --- E12: even-path reduction ---

func BenchmarkE12_EvenPathReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Random(8, 0.25, rng)
	b.Run("reduce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			homeo.EvenPathReduction(g, 0, 1, 2, 3)
		}
	})
	b.Run("decide", func(b *testing.B) {
		gs, s, t := homeo.EvenPathReduction(g, 0, 1, 2, 3)
		for i := 0; i < b.N; i++ {
			homeo.EvenSimplePath(gs, s, t)
		}
	})
}

// --- E13: dichotomy classification ---

func BenchmarkE13_DichotomyTable(b *testing.B) {
	patterns := []homeo.Pattern{
		homeo.Star(2, false), homeo.Star(3, true), homeo.InStar(2, false),
		homeo.H1(), homeo.H2(), homeo.H3(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range patterns {
			p.InClassC()
		}
	}
}

func BenchmarkE21_TopDownVsBottomUp(b *testing.B) {
	g := graph.DirectedPath(40)
	p := datalog.TransitiveClosureProgram()
	b.Run("bottomup-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			datalog.MustEval(p, datalog.FromGraph(g))
		}
	})
	b.Run("topdown-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			td, err := datalog.NewTopDown(p, datalog.FromGraph(g))
			if err != nil {
				b.Fatal(err)
			}
			td.Ask(datalog.NewGoal("S", 2, nil))
		}
	})
	b.Run("topdown-selective", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			td, err := datalog.NewTopDown(p, datalog.FromGraph(g))
			if err != nil {
				b.Fatal(err)
			}
			if got := td.Ask(datalog.NewGoal("S", 2, map[int]int{0: 0, 1: 39})); len(got) != 1 {
				b.Fatal("wrong answer")
			}
		}
	})
}

// --- E15–E20: extensions ---

func BenchmarkE15_QuotientWitness(b *testing.B) {
	b.Run("build-H2-k2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			homeo.NewLowerBoundH2(2)
		}
	})
	b.Run("strategy-H3-k2", func(b *testing.B) {
		q := homeo.NewLowerBoundH3(2)
		a, bb := q.Structures()
		dup := homeo.NewQuotientDuplicator(q)
		ref := pebble.NewReferee(a, bb, 2)
		moves := pebble.RandomSchedule(rand.New(rand.NewSource(7)), a.N, 2, 150)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ref.Play(dup, moves); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE16_Graft(b *testing.B) {
	f2g := graph.New(4)
	f2g.AddEdge(0, 1)
	f2g.AddEdge(1, 2)
	f2g.AddEdge(2, 3)
	f2 := homeo.NewPattern(f2g)
	lb := homeo.NewLowerBound(1)
	c := lb.Construction
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := homeo.NewGraft(homeo.H1(), f2, lb.A, c.G,
			[]int{lb.W1, lb.W2, lb.W3, lb.W4}, []int{c.S1, c.S2, c.S3, c.S4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17_OrderFormulas(b *testing.B) {
	s := logic.TotalOrder(12)
	f := logic.AtLeastFormula(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !logic.Eval(s, f, map[string]int{}) {
			b.Fatal("τ_12 must hold on the 12-order")
		}
	}
}

func BenchmarkE18_SubdivisionGame(b *testing.B) {
	ga, a1, a2, a3, a4 := graph.TwoDisjointPathsGraph(3, 3)
	subA := homeo.NewSubdivision(ga, a1, a2, a3, a4)
	subB := homeo.NewSubdivision(ga, a1, a2, a3, a4)
	h := map[int]int{}
	for v := 0; v < ga.N(); v++ {
		h[v] = v
	}
	dup := homeo.NewSubdivisionDuplicator(subA, subB, &pebble.EmbeddingDuplicator{H: h})
	aStar := structure.FromGraph(subA.Star, []string{"s1", "t"}, []int{subA.Start, subA.Target})
	bStar := structure.FromGraph(subB.Star, []string{"s1", "t"}, []int{subB.Start, subB.Target})
	ref := pebble.NewReferee(aStar, bStar, 2)
	moves := pebble.RandomSchedule(rand.New(rand.NewSource(8)), aStar.N, 2, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ref.Play(dup, moves); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE19_Definability(b *testing.B) {
	var fam []*structure.Structure
	for _, n := range []int{2, 3, 4, 5} {
		fam = append(fam, structure.FromGraph(graph.DirectedPath(n), nil, nil))
	}
	query := func(s *structure.Structure) bool { return s.N%2 == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pebble.CheckDefinability(2, fam, query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE20_PatternBased(b *testing.B) {
	g := graph.Random(5, 0.3, rand.New(rand.NewSource(9)))
	s := structure.FromGraph(g, []string{"s", "t"}, []int{0, 4})
	b.Run("game-procedure-k3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := homeo.DecideByGame(homeo.TransitiveClosureQuery{}, s, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("embedding-definition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			homeo.DecideByEmbedding(homeo.TransitiveClosureQuery{}, s)
		}
	})
}

func BenchmarkE22_SinglePlayerVsTwoPlayer(b *testing.B) {
	g := graph.Grid(4, 4)
	inst, err := homeo.NewInstance(homeo.H1(), g, []int{0, 15, 1, 14})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single-player", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			game, err := homeo.NewSinglePlayerGame(homeo.H1(), inst)
			if err != nil {
				b.Fatal(err)
			}
			game.Winnable()
		}
	})
	b.Run("two-player", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			game, err := homeo.NewAcyclicGame(homeo.H1(), inst)
			if err != nil {
				b.Fatal(err)
			}
			game.PlayerIIWins()
		}
	})
}

// --- E25: packed worklist game solver ---

// E25 measures the rebuilt pebble-game solver (packed position keys,
// reverse-dependency worklist pruning, bounded-worker parallelism) against
// the retained seed algorithm (pebble.ReferenceSolve: string keys,
// round-based full rescans) on the k=3 instances of E3/E4.

func e25Instances() []struct {
	name     string
	a, b     *structure.Structure
	oneToOne bool
} {
	ga, _, _, _, _ := graph.TwoDisjointPathsGraph(4, 4)
	gb, _, _, _, _ := graph.CrossingPathsGraph(2)
	return []struct {
		name     string
		a, b     *structure.Structure
		oneToOne bool
	}{
		{"paths-10-12", structure.FromGraph(graph.DirectedPath(10), nil, nil),
			structure.FromGraph(graph.DirectedPath(12), nil, nil), true},
		{"disjoint-vs-crossing", structure.FromGraph(ga, nil, nil),
			structure.FromGraph(gb, nil, nil), true},
		{"hom-paths-10-12", structure.FromGraph(graph.DirectedPath(10), nil, nil),
			structure.FromGraph(graph.DirectedPath(12), nil, nil), false},
	}
}

func BenchmarkE25_SolveK3(b *testing.B) {
	for _, tc := range e25Instances() {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := &pebble.Game{A: tc.a, B: tc.b, K: 3, OneToOne: tc.oneToOne}
				if _, err := g.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE25_SolverAblation(b *testing.B) {
	// Packed worklist solver (sequential, to isolate the algorithmic win)
	// vs the retained seed algorithm on the same instance.
	a := structure.FromGraph(graph.DirectedPath(10), nil, nil)
	bb := structure.FromGraph(graph.DirectedPath(12), nil, nil)
	b.Run("packed-seq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := &pebble.Game{A: a, B: bb, K: 3, OneToOne: true, Parallelism: 1}
			if _, err := g.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pebble.ReferenceSolve(a, bb, 3, true, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE25_ParallelismSweep(b *testing.B) {
	a := structure.FromGraph(graph.DirectedPath(12), nil, nil)
	bb := structure.FromGraph(graph.DirectedPath(14), nil, nil)
	for _, par := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("par-%d", par)
		if par == 0 {
			name = "par-auto"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := &pebble.Game{A: a, B: bb, K: 3, OneToOne: true, Parallelism: par}
				if _, err := g.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE25_HomGameGuard(b *testing.B) {
	// Guard for the short-circuit fix: the homomorphism-variant forth check
	// must consult OneToOne before paying for injectivity scans. A cycle
	// target keeps every extension legal, maximizing forth probes.
	a := structure.FromGraph(graph.DirectedPath(8), nil, nil)
	bb := structure.FromGraph(graph.DirectedCycle(6), nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := pebble.NewHomGame(a, bb, 3)
		if _, err := g.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E26: goal-directed magic sets ---

// E26 measures answering one bound query three ways: goal-directed
// magic-set evaluation (internal/magic), full bottom-up saturation (what
// an unbound query pays), and the top-down tabled engine. Workloads are
// the paper's own constructions — the Theorem 6.1 disjoint-paths family
// Q2 with source and both sinks bound (the acceptance workload: magic
// must derive strictly fewer facts and be ≥2x faster than saturation),
// and transitive closure on a path with both endpoints bound.
// EXPERIMENTS.md's E26 section records a run as BENCH_magic.{txt,json}.

type e26Workload struct {
	name    string
	prog    *datalog.Program
	db      func() *datalog.Database
	goal    datalog.Goal
	answers int
}

func e26Workloads() []e26Workload {
	// Q2(6,11,8) holds on this seed-determined graph, so the bound query
	// does real work instead of failing fast on an empty demand set.
	qg := graph.Random(12, 0.3, rand.New(rand.NewSource(3)))
	tg := graph.DirectedPath(80)
	return []e26Workload{
		{"q2-random-12", datalog.QklPrograms(2, 0),
			func() *datalog.Database { return datalog.FromGraph(qg) },
			datalog.NewGoal("Q2", 3, map[int]int{0: 6, 1: 11, 2: 8}), 1},
		{"tc-path-80", datalog.TransitiveClosureProgram(),
			func() *datalog.Database { return datalog.FromGraph(tg) },
			datalog.NewGoal("S", 2, map[int]int{0: 0, 1: 79}), 1},
	}
}

func BenchmarkE26_MagicBound(b *testing.B) {
	for _, w := range e26Workloads() {
		b.Run(w.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := magic.EvalGoal(context.Background(), w.prog, w.db(), w.goal, magic.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Answers) != w.answers {
					b.Fatalf("%d answers, want %d", len(res.Answers), w.answers)
				}
			}
		})
	}
}

// BenchmarkE26_MagicBoundCachedRewrite is the service's steady state: the
// adorn-and-rewrite pipeline ran once (rewrite cache hit) and only the
// seeded evaluation is paid per query.
func BenchmarkE26_MagicBoundCachedRewrite(b *testing.B) {
	for _, w := range e26Workloads() {
		b.Run(w.name, func(b *testing.B) {
			rw, err := magic.NewRewrite(w.prog, w.goal, magic.BoundFirstSIP{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := magic.EvalRewritten(context.Background(), rw, w.db(), w.goal, datalog.DefaultOptions)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Answers) != w.answers {
					b.Fatalf("%d answers, want %d", len(res.Answers), w.answers)
				}
			}
		})
	}
}

func BenchmarkE26_SaturationBound(b *testing.B) {
	for _, w := range e26Workloads() {
		b.Run(w.name, func(b *testing.B) {
			want := datalog.Tuple(append([]int(nil), w.goal.Value...))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := datalog.Eval(w.prog, w.db(), datalog.DefaultOptions)
				if err != nil {
					b.Fatal(err)
				}
				if !res.IDB[w.goal.Pred].Has(want) {
					b.Fatal("bound tuple missing from saturation")
				}
			}
		})
	}
}

func BenchmarkE26_TopDownBound(b *testing.B) {
	for _, w := range e26Workloads() {
		b.Run(w.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				td, err := datalog.NewTopDown(w.prog, w.db())
				if err != nil {
					b.Fatal(err)
				}
				if got := td.Ask(w.goal); len(got) != w.answers {
					b.Fatalf("%d answers, want %d", len(got), w.answers)
				}
			}
		})
	}
}

// --- flow substrate ---

func BenchmarkFlow_MaxDisjointPaths(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("grid-%d", n), func(b *testing.B) {
			side := 4
			for side*side < n {
				side++
			}
			g := graph.Grid(side, side)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flow.MaxDisjointPaths(g, 0, g.N()-1)
			}
		})
	}
}

// --- E27: cost-based join planning ---

// E27 measures the cost-based join planner (internal/plan) on an
// adversarially ordered rule set: the body joins the dense E with itself
// before the tiny R, so textual order pays the E⋈E blowup while the
// planner anchors on R and probes E on bound columns. The acceptance
// shape: planned evaluation ≥2x faster than textual on this workload,
// and a plan-cache hit costs ~0 compared to building the plan (the
// repeated-query steady state). EXPERIMENTS.md's E27 section records a
// run as BENCH_plan.{txt,json}.

const e27Source = "P(x,w) :- E(x,y), E(y,z), E(z,u), R(u,w). goal P."

// e27DB is a dense random E (n=48, p≈0.2, ~460 edges) plus a 3-row R.
func e27DB() *datalog.Database {
	g := graph.Random(48, 0.2, rand.New(rand.NewSource(27)))
	db := datalog.FromGraph(g)
	db.EnsureRelation("R", 2)
	db.AddFact("R", 0, 1)
	db.AddFact("R", 2, 3)
	db.AddFact("R", 4, 5)
	return db
}

func e27Program(b *testing.B) *datalog.Program {
	b.Helper()
	prog, err := datalog.Parse(e27Source)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func BenchmarkE27_TextualOrder(b *testing.B) {
	prog, base := e27Program(b), e27DB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := datalog.Eval(prog, base.Clone(), datalog.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkE27_PlannedOrder is the service's steady state: the plan is
// cached and the statistics catalog is bound per snapshot, so each query
// pays only the reordered evaluation.
func BenchmarkE27_PlannedOrder(b *testing.B) {
	prog, base := e27Program(b), e27DB()
	pl := plan.New(plan.Config{})
	cat := plan.Collect(base)
	opts := datalog.DefaultOptions.WithPlanner(pl.With(cat))
	// Correctness guard: planned and textual agree on this workload.
	want, err := datalog.Eval(prog, base.Clone(), datalog.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	got, err := datalog.Eval(prog, base.Clone(), opts)
	if err != nil {
		b.Fatal(err)
	}
	if want.IDB["P"].Size() != got.IDB["P"].Size() {
		b.Fatalf("planned %d tuples, textual %d", got.IDB["P"].Size(), want.IDB["P"].Size())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := datalog.Eval(prog, base.Clone(), opts)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkE27_PlanningCost isolates what planning itself costs: stats
// collection over the EDB, a cold plan build (join-order search plus the
// containment pre-pass), and a warm plan-cache hit — the per-query cost
// once the same program has been planned before.
func BenchmarkE27_PlanningCost(b *testing.B) {
	prog, base := e27Program(b), e27DB()
	cat := plan.Collect(base)
	b.Run("stats-collect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = plan.Collect(base)
		}
	})
	b.Run("cold-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pl := plan.New(plan.Config{})
			if _, hit := pl.PlanProgram(prog, cat); hit {
				b.Fatal("cold build reported a cache hit")
			}
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		pl := plan.New(plan.Config{})
		pl.PlanProgram(prog, cat)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit := pl.PlanProgram(prog, cat); !hit {
				b.Fatal("warm plan missed the cache")
			}
		}
	})
}

// BenchmarkE27_SubsumptionPrune evaluates a program carrying redundant
// alpha-renamed twins of its join rules: the containment pre-pass drops
// the duplicates (they are non-recursive, hence CQ-eligible), so planned
// evaluation compiles and fires half the expensive joins.
func BenchmarkE27_SubsumptionPrune(b *testing.B) {
	src := "P(x,z) :- E(x,y), E(y,z). P(a,c) :- E(a,b), E(b,c). Q(x) :- P(x,y), P(y,x). Q(a) :- P(a,b), P(b,a). goal Q."
	prog, err := datalog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	base := datalog.FromGraph(graph.Random(32, 0.15, rand.New(rand.NewSource(28))))
	pl := plan.New(plan.Config{})
	cat := plan.Collect(base)
	opts := datalog.DefaultOptions.WithPlanner(pl.With(cat))
	b.Run("textual", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := datalog.Eval(prog, base.Clone(), datalog.DefaultOptions); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := datalog.Eval(prog, base.Clone(), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
