package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/graph"
	"repro/internal/shard"
)

// E31: sharded evaluation benchmarks. The gate workload is a key-local
// triple join — every body atom shares the partition variable, so the
// router splits the EDB cleanly across workers and no derived tuple
// crosses a shard boundary. Saturation throughput at N workers vs the
// N=1 single-worker coordinator is the acceptance gate (N=4 must reach
// >= 2x single-worker). The TC variant measures the opposite regime:
// a recursive program whose deltas cross shards every round, pricing
// the exchange barrier honestly.

// keyJoinProgram: J(k) :- E(k,x), E(k,y), E(k,z), x!=y, y!=z, x!=z.
// Work per key grows with degree^3 while the output is one tuple per
// qualifying key, so worker compute dominates and the coordinator's
// serial merge stays negligible — the shape shard-local evaluation is
// built for.
func keyJoinProgram() *datalog.Program {
	k, x, y, z := datalog.V("k"), datalog.V("x"), datalog.V("y"), datalog.V("z")
	r := datalog.Rule{Head: datalog.NewAtom("J", k)}
	for _, v := range []datalog.Term{x, y, z} {
		a := datalog.NewAtom("E", k, v)
		r.Body = append(r.Body, datalog.BodyItem{Atom: &a})
	}
	for _, pair := range [][2]datalog.Term{{x, y}, {y, z}, {x, z}} {
		c := datalog.Constraint{Left: pair[0], Right: pair[1], Neq: true}
		r.Body = append(r.Body, datalog.BodyItem{Constraint: &c})
	}
	return &datalog.Program{Rules: []datalog.Rule{r}, Goal: "J"}
}

// keyJoinDatabase builds E with `keys` distinct keys of degree `deg`
// inside a universe of 256. Neighbors (13 odd, deg <= 16) are distinct
// per key, so every key contributes one J tuple.
func keyJoinDatabase(keys, deg int) *datalog.Database {
	const universe = 256
	db := datalog.NewDatabase(universe)
	db.EnsureRelation("E", 2)
	for k := 0; k < keys; k++ {
		for j := 0; j < deg; j++ {
			db.AddFact("E", k, (k*7+j*13+1)%universe)
		}
	}
	return db
}

// BenchmarkE31_SaturationFixpoint: one iteration = building the sharded
// coordinator to fixpoint over the gate workload. Workers run the packed
// engine with Parallelism 1, so any speedup over workers=1 is due to
// sharding alone, not the intra-engine rule-firing pool.
func BenchmarkE31_SaturationFixpoint(b *testing.B) {
	prog := keyJoinProgram()
	db := keyJoinDatabase(192, 16)
	opts := datalog.DefaultOptions.WithParallelism(1)
	want, err := datalog.Eval(prog, db.Clone(), opts)
	if err != nil {
		b.Fatal(err)
	}
	wantJ := want.IDB["J"].Size()
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var maxLoad int
			for i := 0; i < b.N; i++ {
				c, err := shard.New(prog, db, shard.Config{Workers: n, Options: opts})
				if err != nil {
					b.Fatal(err)
				}
				if got := c.Result().IDB["J"].Size(); got != wantJ {
					b.Fatalf("fixpoint has %d J tuples, want %d", got, wantJ)
				}
				maxLoad = 0
				for _, l := range c.WorkerLoads() {
					if l > maxLoad {
						maxLoad = l
					}
				}
			}
			// The busiest worker's derivation count is the critical path:
			// wall-clock tracks it once each worker has a core, so this is
			// the machine-independent throughput number (the recording box
			// has one CPU and time-slices the workers).
			b.ReportMetric(float64(maxLoad), "critpath-derivs")
		})
	}
}

// BenchmarkE31_InsertMaintenance: one timed op inserts a fresh edge for
// an existing key, firing the delta join at exactly one shard; the
// revert delete (a full sharded rebuild) runs off the clock, so the
// base workload is kept small. The delta itself is tiny — this prices
// the coordinator's per-commit overhead (routing, barrier, merge) over
// the single engine's insert path.
func BenchmarkE31_InsertMaintenance(b *testing.B) {
	prog := keyJoinProgram()
	db := keyJoinDatabase(32, 4)
	opts := datalog.DefaultOptions.WithParallelism(1)
	f := datalog.Fact{Pred: "E", Tuple: datalog.Tuple{5, 255}}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			c, err := shard.New(prog, db, shard.Config{Workers: n, Options: opts})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Insert(f); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := c.Delete(f); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE31_ExchangeTC: transitive closure over a random graph. The
// recursive rule forwards IDB deltas across shards at every round
// barrier, so this measures the exchange overhead the gate workload
// avoids — expect workers>1 to cost more than workers=1 here.
func BenchmarkE31_ExchangeTC(b *testing.B) {
	prog := datalog.TransitiveClosureProgram()
	g := graph.Random(96, 0.05, rand.New(rand.NewSource(31)))
	db := datalog.FromGraph(g)
	opts := datalog.DefaultOptions.WithParallelism(1)
	want, err := datalog.Eval(prog, db.Clone(), opts)
	if err != nil {
		b.Fatal(err)
	}
	wantT := want.Goal(prog).Size()
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := shard.New(prog, db, shard.Config{Workers: n, Options: opts})
				if err != nil {
					b.Fatal(err)
				}
				if got := c.Result().Goal(prog).Size(); got != wantT {
					b.Fatalf("fixpoint has %d tuples, want %d", got, wantT)
				}
			}
		})
	}
}
