// E29: the streaming execution layer. Two questions, per DESIGN.md §13:
// what a full drain of a layered non-recursive join costs on the pull
// iterator tree versus semi-naive materialization (wall clock and, more
// to the point, allocations — the streamed run never stores the
// intermediate relations), and how much a limit-N query saves when the
// iterator stops pulling at N answers instead of computing the fixpoint
// and truncating.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/stream"
)

// e29Source composes two joins: K is a three-way join of E, F, G with
// the intermediate J never asked for. Materialized evaluation stores J
// in full; the streamed plan inlines it.
const e29Source = `
J(x, z) :- E(x, y), F(y, z).
K(x, w) :- J(x, z), G(z, w).
goal K.
`

// e29DB builds a random EDB with perFact facts in each of E, F, G over
// an n-element universe (seeded, so every run sees the same database).
func e29DB(n, perFact int) *datalog.Database {
	rng := rand.New(rand.NewSource(29))
	db := datalog.NewDatabase(n)
	for _, pred := range []string{"E", "F", "G"} {
		for i := 0; i < perFact; i++ {
			db.AddFact(pred, rng.Intn(n), rng.Intn(n))
		}
	}
	return db
}

// e29Equiv asserts once, outside the timed region, that both executions
// produce byte-identical answer sets after the canonical sort.
func e29Equiv(b *testing.B, p *datalog.Program, db *datalog.Database) {
	b.Helper()
	res, err := datalog.Eval(p, db.Clone(), datalog.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	want := res.IDB["K"].Tuples()
	got, _, err := stream.Tuples(context.Background(), p, db.Clone(), "K", stream.Options{Eval: datalog.DefaultOptions})
	if err != nil {
		b.Fatal(err)
	}
	datalog.SortTuples(got)
	if len(got) != len(want) {
		b.Fatalf("streamed %d answers, materialized %d", len(got), len(want))
	}
	for i := range got {
		if datalog.CompareTuples(got[i], want[i]) != 0 {
			b.Fatalf("answer %d differs: streamed %v, materialized %v", i, got[i], want[i])
		}
	}
}

// BenchmarkE29_ChainJoinDrain drains the full K relation both ways. The
// streamed side sorts its output into the canonical order so the two
// timed regions end in the same state.
func BenchmarkE29_ChainJoinDrain(b *testing.B) {
	p, err := datalog.Parse(e29Source)
	if err != nil {
		b.Fatal(err)
	}
	for _, scale := range []struct{ n, facts int }{{256, 1024}, {512, 4096}} {
		db := e29DB(scale.n, scale.facts)
		name := fmt.Sprintf("n%d-f%d", scale.n, scale.facts)
		b.Run(name+"/materialized", func(b *testing.B) {
			e29Equiv(b, p, db)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := datalog.Eval(p, db.Clone(), datalog.DefaultOptions)
				if err != nil {
					b.Fatal(err)
				}
				if res.IDB["K"].Size() == 0 {
					b.Fatal("empty answer")
				}
			}
		})
		b.Run(name+"/streamed", func(b *testing.B) {
			e29Equiv(b, p, db)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := stream.Tuples(context.Background(), p, db.Clone(), "K", stream.Options{Eval: datalog.DefaultOptions})
				if err != nil {
					b.Fatal(err)
				}
				if len(got) == 0 {
					b.Fatal("empty answer")
				}
				datalog.SortTuples(got)
			}
		})
	}
}

// BenchmarkE29_FirstN asks for the first 10 answers. The materialized
// side has no choice but to compute the whole fixpoint and truncate; the
// streamed side stops pulling at the limit.
func BenchmarkE29_FirstN(b *testing.B) {
	p, err := datalog.Parse(e29Source)
	if err != nil {
		b.Fatal(err)
	}
	db := e29DB(512, 4096)
	const limit = 10
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := datalog.Eval(p, db.Clone(), datalog.DefaultOptions)
			if err != nil {
				b.Fatal(err)
			}
			page := res.IDB["K"].Tuples()
			if len(page) > limit {
				page = page[:limit]
			}
			if len(page) != limit {
				b.Fatal("short answer")
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, _, err := stream.Tuples(context.Background(), p, db.Clone(), "K",
				stream.Options{Eval: datalog.DefaultOptions, Limit: limit})
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != limit {
				b.Fatal("short answer")
			}
		}
	})
}
