// Package repro reproduces Kolaitis & Vardi, "On the Expressive Power of
// Datalog: Tools and a Case Study" (PODS 1990): a Datalog(≠) engine, the
// existential k-pebble games that characterize the infinitary fragment
// L^ω, and the complete fixed-subgraph-homeomorphism case study, including
// the FHW switch construction and the Theorem 6.6 lower-bound witnesses.
//
// The implementation lives under internal/; see README.md for the map,
// DESIGN.md for the experiment index, and bench_test.go for the benchmark
// harness that regenerates every experiment's numbers.
package repro
