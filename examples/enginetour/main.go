// Engine tour: the Datalog(≠) engine features a downstream user gets
// beyond the paper's semantics — goal-directed evaluation, provenance
// with witness extraction, and conjunctive-query containment — all on the
// paper's running examples.
package main

import (
	"fmt"
	"log"

	"repro/internal/datalog"
	"repro/internal/graph"
)

func main() {
	g := graph.DirectedPath(10)
	g.AddEdge(2, 7) // a shortcut
	db := datalog.FromGraph(g)
	prog := datalog.TransitiveClosureProgram()

	// 1. Bottom-up with provenance: why does S(0,9) hold?
	res, err := datalog.Eval(prog, db.Clone(), datalog.Options{
		SemiNaive: true, UseIndexes: true, TrackProvenance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	proof, err := res.Prove(prog, "S", datalog.Tuple{0, 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("why S(0,9)? the engine's recorded derivation uses the edges:")
	for _, leaf := range proof.Leaves() {
		fmt.Printf("  %s\n", leaf)
	}
	fmt.Printf("(%d rule applications; the witness is a genuine 0→9 walk)\n\n", proof.Size())

	// 2. Goal-directed evaluation: answer S(8, ?) without saturating.
	td, err := datalog.NewTopDown(prog, db.Clone())
	if err != nil {
		log.Fatal(err)
	}
	answers := td.Ask(datalog.NewGoal("S", 2, map[int]int{0: 8}))
	fmt.Printf("top-down S(8, ?) -> %v in %d subgoal calls\n", answers, td.Calls)
	tdFull, _ := datalog.NewTopDown(prog, db.Clone())
	tdFull.Ask(datalog.NewGoal("S", 2, nil))
	fmt.Printf("(full enumeration would make %d calls)\n\n", tdFull.Calls)

	// 3. Conjunctive-query containment and minimization.
	q, err := datalog.ParseCQ("P(x) :- E(x, y), E(x, z), E(y, w).")
	if err != nil {
		log.Fatal(err)
	}
	m, err := q.Minimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CQ minimization (Chandra–Merlin core):")
	fmt.Printf("  before: %s\n", q.Rule)
	fmt.Printf("  after:  %s\n", m.Rule)
	eq, _ := q.EquivalentTo(m)
	fmt.Printf("  equivalent: %v\n", eq)
}
