// Definability: Proposition 4.2 as a working tool. L^k-definability of a
// class of structures is equivalent to upward closure under ⪯k; on a
// finite family of structures the closure condition is decidable, so we
// can hunt for witnesses that a query is NOT L^k-definable — the exact
// method (Theorem 4.10) behind the paper's lower bounds, here on
// bite-sized families.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/pebble"
	"repro/internal/structure"
)

func main() {
	// The family: directed paths P2..P6.
	var fam []*structure.Structure
	var names []string
	for _, n := range []int{2, 3, 4, 5, 6} {
		fam = append(fam, structure.FromGraph(graph.DirectedPath(n), nil, nil))
		names = append(names, fmt.Sprintf("P%d", n))
	}

	// The ⪯² preorder matrix (Example 4.4 predicts a triangle).
	m, err := pebble.PreorderMatrix(2, fam)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("⪯² over directed paths (row ⪯² column):")
	fmt.Print("      ")
	for _, n := range names {
		fmt.Printf("%4s", n)
	}
	fmt.Println()
	for i, row := range m {
		fmt.Printf("  %4s", names[i])
		for _, v := range row {
			mark := "   ."
			if v {
				mark = "   ✓"
			}
			fmt.Print(mark)
		}
		fmt.Println()
	}

	queries := []struct {
		name  string
		query func(*structure.Structure) bool
	}{
		{"has a path of length >= 3 (existential positive)", func(s *structure.Structure) bool {
			return structure.ToGraph(s).LongestPathLen() >= 3
		}},
		{"has at most 3 edges (not monotone)", func(s *structure.Structure) bool {
			return s.Rel("E").Size() <= 3
		}},
		{"even number of elements (parity)", func(s *structure.Structure) bool {
			return s.N%2 == 0
		}},
	}
	fmt.Println("\nProposition 4.2 closure checks at k = 2:")
	for _, q := range queries {
		v, err := pebble.CheckDefinability(2, fam, q.query)
		if err != nil {
			log.Fatal(err)
		}
		if v == nil {
			fmt.Printf("  %-50s closure respected (consistent with L² definability)\n", q.name)
		} else {
			fmt.Printf("  %-50s VIOLATED: %s ⊨ Q, %s ⊭ Q, yet %s ⪯² %s ⇒ not L²-definable\n",
				q.name, names[v.AIndex], names[v.BIndex], names[v.AIndex], names[v.BIndex])
		}
	}

	fmt.Println("\nThe same method at full scale is Theorem 6.6: the witness pair")
	fmt.Println("(A_k, G_{φ_k}) violates ⪯k-closure for the two-disjoint-paths query,")
	fmt.Println("for every k — see examples/inexpressibility.")
}
