// Quickstart: parse and evaluate Datalog(≠) programs through the public
// API — the transitive-closure program of Example 2.2 and the
// w-avoiding-path program of Example 2.1, the paper's two running
// examples.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Example 2.2: transitive closure — pure Datalog.
	tc, err := core.ParseProgram(`
		% π2 from Example 2.2
		S(x, y) :- E(x, y).
		S(x, y) :- E(x, z), S(z, y).
		goal S.
	`)
	if err != nil {
		log.Fatal(err)
	}
	db, err := core.ParseDatabase(`
		universe 5
		E(0, 1).
		E(1, 2).
		E(2, 3).
		E(3, 4).
		E(4, 1).   % a cycle back into the chain
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(tc, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 2.2 — transitive closure:")
	fmt.Print(core.FormatRelation("S", res.Goal(tc)))
	fmt.Printf("fixpoint reached in %d rounds\n\n", res.Rounds)

	// Example 2.1: the w-avoiding path query — Datalog(≠) proper. The
	// head variable w is bound by no body atom and ranges over the whole
	// universe, which the engine supports natively.
	avoid, err := core.ParseProgram(`
		% π1 from Example 2.1: "is there a w-avoiding path from x to y?"
		T(x, y, w) :- E(x, y), w != x, w != y.
		T(x, y, w) :- E(x, z), T(z, y, w), w != x.
		goal T.
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = core.Run(avoid, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 2.1 — w-avoiding paths:")
	fmt.Printf("|T| = %d tuples; a few of them:\n", res.Goal(avoid).Size())
	for i, t := range res.Goal(avoid).Tuples() {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  T%s — path %d→%d avoiding %d\n", t, t[0], t[1], t[2])
	}
	// The paper's point: T(1,3,w) holds for w=0 (the path 1→2→3 avoids 0)
	// but not for w=2 (every 1→3 path passes 2).
	fmt.Printf("\nT(1,3,0) = %v (1→2→3 avoids 0)\n", res.Goal(avoid).Has([]int{1, 3, 0}))
	fmt.Printf("T(1,3,2) = %v (no 1→3 path avoids 2)\n", res.Goal(avoid).Has([]int{1, 3, 2}))
}
