// Inexpressibility: the Theorem 4.10 method end to end. To show a query Q
// is not expressible in L^k (hence not in Datalog(≠) with k variables),
// exhibit structures A and B with A ⊨ Q, B ⊭ Q, and Player II winning the
// existential k-pebble game on (A, B). This example runs the method on
// Example 4.4's paths and then on the real thing: the Theorem 6.6 witness
// (A_k, B_k) for the two-disjoint-paths query.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/homeo"
	"repro/internal/pebble"
)

func main() {
	// Warm-up (Example 4.4): the query "some path has length >= 5" on
	// directed paths. A = 6-node path satisfies it; B = 4-node path does
	// not; II wins the 2-pebble game on (A, B)? No — here II CANNOT win
	// (long into short), so no witness arises, matching the fact that the
	// query IS expressible with few variables.
	a := core.GraphStructure(graph.DirectedPath(6), nil, nil)
	b := core.GraphStructure(graph.DirectedPath(4), nil, nil)
	w, err := core.CheckInexpressibilityWitness(2, a, b, func(s *core.Structure) bool {
		return pathLen(s) >= 5
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 4.4 as a (non-)witness at k=2: A⊨Q=%v B⊨Q=%v II-wins=%v valid=%v\n",
		w.ASatisfies, w.BSatisfies, w.IIWins, w.Valid())
	fmt.Println("  (II loses, so these structures prove nothing — as expected:")
	fmt.Println("   'there is a path of length 5' is existential positive.)")

	// The real lower bound (Theorem 6.6): the two-disjoint-paths query.
	// For each k we have the witness pair (A_k, B_k = G_{φ_k}).
	fmt.Println("\nTheorem 6.6 witnesses for the two-disjoint-paths query:")
	for k := 1; k <= 3; k++ {
		lb := homeo.NewLowerBound(k)
		ak, bk := lb.Structures()
		aSat := lb.A.TwoDisjointPaths(lb.W1, lb.W2, lb.W3, lb.W4)
		// B_k fails the query because φ_k is unsatisfiable and the
		// Section 6.2 reduction is exact (verified by experiment E8; for
		// k=1 also by direct brute force).
		bSat := false
		if k == 1 {
			g, s1, s2, s3, s4 := lb.Construction.TwoDisjointPathsQuery()
			bSat = g.TwoDisjointPaths(s1, s2, s3, s4)
		}
		// Player II's explicit strategy from the paper, exercised against
		// random adversarial schedules.
		dup := homeo.NewDuplicator(lb)
		ref := pebble.NewReferee(ak, bk, k)
		losses := 0
		rng := newRng(k)
		for trial := 0; trial < 30; trial++ {
			if err := ref.Play(dup, pebble.RandomSchedule(rng, ak.N, k, 120)); err != nil {
				losses++
			}
		}
		fmt.Printf("  k=%d: |A_k|=%-4d |B_k|=%-4d A⊨Q=%v B⊨Q=%v strategy-losses=%d/30\n",
			k, ak.N, bk.N, aSat, bSat, losses)
	}
	fmt.Println("\nConclusion (Theorem 6.6): the H1-subgraph homeomorphism query is not")
	fmt.Println("expressible in L^ω, hence not in Datalog(≠) — with no complexity assumptions.")
}

func pathLen(s *core.Structure) int {
	g := graph.New(s.N)
	for _, t := range s.Rel("E").Tuples() {
		g.AddEdge(t[0], t[1])
	}
	return g.LongestPathLen()
}

func newRng(k int) *rand.Rand { return rand.New(rand.NewSource(int64(100 + k))) }
