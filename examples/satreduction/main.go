// SAT reduction: the Section 6.2 construction as a playground. Builds
// G_φ for a formula, decides satisfiability twice — by DPLL and by the
// two-disjoint-paths query on G_φ — and shows the standard paths a
// satisfying assignment induces (the constructive direction of the proof).
// Also regenerates Figures 5 and 6.
package main

import (
	"fmt"
	"log"

	"repro/internal/cnf"
	"repro/internal/switchgraph"
)

func main() {
	// Figures 5 and 6: the smallest satisfiable and unsatisfiable cases.
	for _, tc := range []struct {
		name string
		f    *cnf.Formula
	}{
		{"Figure 5 (x1 ∨ ~x1)", cnf.New(cnf.Clause{1, -1})},
		{"Figure 6 (x1 ∧ ~x1)", cnf.New(cnf.Clause{1}, cnf.Clause{-1})},
	} {
		c := switchgraph.Build(tc.f)
		g, s1, s2, s3, s4 := c.TwoDisjointPathsQuery()
		_, sat := tc.f.Satisfiable()
		paths := g.TwoDisjointPaths(s1, s2, s3, s4)
		fmt.Printf("%s: %s\n  SAT=%v  two-disjoint-paths=%v\n", tc.name, c.Stats(), sat, paths)
	}

	// A bigger satisfiable instance with the witness paths spelled out.
	f := cnf.New(cnf.Clause{1, -2}, cnf.Clause{-1, 2})
	fmt.Printf("\nformula: %s\n", f)
	assign, ok := f.Satisfiable()
	if !ok {
		log.Fatal("expected satisfiable")
	}
	for v := 1; v <= f.Vars; v++ {
		if _, has := assign[v]; !has {
			assign[v] = true
		}
	}
	fmt.Printf("DPLL assignment: %v\n", assign)

	c := switchgraph.Build(f)
	fmt.Printf("G_φ: %s\n", c.Stats())

	// The constructive direction: the assignment picks a p/q group per
	// switch, a column per variable, and a true occurrence per clause;
	// the induced standard paths are simple and disjoint.
	choices := map[int]bool{}
	for _, sw := range c.Switches {
		choices[sw.ID] = switchgraph.GroupChoice(sw, assign)
	}
	p1 := c.StandardPath12(choices)
	picks, err := c.SatisfyingPicks(assign)
	if err != nil {
		log.Fatal(err)
	}
	p2 := c.StandardPath34(assign, picks)
	fmt.Printf("standard path s1→s2: %d edges, simple=%v\n", p1.Len(), p1.Simple())
	fmt.Printf("standard path s3→s4: %d edges, simple=%v\n", p2.Len(), p2.Simple())
	on := map[int]bool{}
	for _, v := range p1 {
		on[v] = true
	}
	disjoint := true
	for _, v := range p2 {
		if on[v] {
			disjoint = false
		}
	}
	fmt.Printf("paths node-disjoint: %v\n", disjoint)

	// The first few hops of path 2 with human-readable labels.
	fmt.Println("\ns3→s4 route (first 12 hops):")
	for i, v := range p2 {
		if i > 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", c.Labels[v])
	}
}
