// Disjoint paths: the Theorem 6.1 pipeline end to end. We take an out-star
// pattern H ∈ C (root with k out-edges), generate the paper's inductive
// Datalog(≠) program family Q_{k,l}, run it on a road-network-style graph,
// and cross-check the answers against the Max-Flow Min-Cut oracle and
// brute-force search.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datalog"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/homeo"
)

func main() {
	// A layered "road network": 4 layers of 4 nodes.
	rng := rand.New(rand.NewSource(42))
	g := graph.LayeredDAG(4, 4, 0.55, rng)
	fmt.Printf("network: %s\n\n", g.Describe())

	// The pattern: a depot (root) shipping to two destinations over
	// node-disjoint routes — the out-star with k = 2, a member of the FHW
	// class C.
	pattern := homeo.Star(2, false)
	fmt.Printf("pattern H = out-star with 2 leaves; in class C: %v\n", pattern.InClassC())

	// The paper's Datalog(≠) program for k = 2 (Theorem 6.1).
	prog := datalog.QklPrograms(2, 0)
	fmt.Println("\ngenerated Datalog(≠) program (Theorem 6.1):")
	fmt.Print(prog.String())

	res, err := datalog.Eval(prog, datalog.FromGraph(g), datalog.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}
	goal := res.IDB["Q2"]
	fmt.Printf("\nQ2 fixpoint: %d tuples in %d rounds\n\n", goal.Size(), res.Rounds)

	// Query a few depot/destination triples three ways.
	depot := 0
	fmt.Println("depot  dest1  dest2 | datalog  flow  brute")
	for _, pair := range [][2]int{{12, 15}, {13, 14}, {12, 13}, {4, 5}} {
		d1, d2 := pair[0], pair[1]
		dl := goal.Has(datalog.Tuple{depot, d1, d2})
		fl := flow.FanOutCount(g, depot, []int{d1, d2}) == 2
		inst, err := homeo.NewInstance(pattern, g, []int{depot, d1, d2})
		if err != nil {
			log.Fatal(err)
		}
		bf := pattern.BruteForce(inst)
		marker := ""
		if dl != fl || fl != bf {
			marker = "   <-- MISMATCH"
		}
		fmt.Printf("%5d %6d %6d | %-7v %-5v %-5v%s\n", depot, d1, d2, dl, fl, bf, marker)
	}

	// Menger's theorem in action: the flow value equals the minimum
	// vertex cut between depot and a far destination.
	target := g.N() - 1
	if g.HasEdge(depot, target) {
		g.RemoveEdge(depot, target)
	}
	maxFlow := flow.MaxDisjointPaths(g, depot, target)
	cut := flow.MinVertexCut(g, depot, target)
	fmt.Printf("\nMax-Flow Min-Cut check (depot %d → node %d): flow=%d, min vertex cut=%v (size %d)\n",
		depot, target, maxFlow, cut, len(cut))
	if maxFlow != len(cut) {
		log.Fatal("Menger violated — impossible")
	}
}
